//! Racing solver portfolio: exact branch-and-bound vs. the heuristic
//! family, under a shared anytime [`Budget`].
//!
//! The race is deterministic and sequential (so results are
//! reproducible for a given budget): the heuristic portfolio (greedy +
//! min-min + sufferage, plus any caller-supplied warm incumbent) runs
//! first and installs the cheapest feasible assignment as the
//! incumbent, then the exact search refines it until it either proves
//! optimality or the budget (wall-clock deadline / node cap) expires.
//! Whoever holds the incumbent when the budget trips wins the race;
//! the outcome carries the best proven lower bound and the relative
//! optimality gap.
//!
//! **Bit-identity guarantee:** with [`Budget::unlimited`] the
//! portfolio delegates to the exact solver's own entry point — same
//! code path, same outputs, bit for bit. Admissible bounds only prune
//! subtrees that cannot contain a *strict* improvement over the
//! incumbent, so the sequence of strictly-improving solutions (and
//! hence the final assignment and cost) is invariant under bound
//! strength; only node counts shrink.
//!
//! Under a *finite* budget the portfolio additionally widens the
//! heuristic race to instance sizes where the exact seeder skips the
//! `O(n²k)` sweeps — in the anytime regime a better starting incumbent
//! matters more than seeding cost.

use crate::branch_bound::{BranchBound, Budget, SolveStatus};
use crate::heuristics;
use crate::instance::AssignmentInstance;
use crate::solution::Assignment;

/// Tasks above which [`heuristics::seed_incumbent`] skips the
/// quadratic sweeps; the portfolio re-runs them under finite budgets.
const SEED_SWEEP_CAP: usize = 512;

/// The racing front-end. Wraps an exact [`BranchBound`] configuration;
/// heuristics always participate in the race regardless of
/// `exact.seed_incumbent` (disable racing by calling the exact solver
/// directly).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Portfolio {
    /// The exact solver configuration used for the refinement leg.
    pub exact: BranchBound,
}

impl Portfolio {
    /// Solve under `budget`, returning the best incumbent found if any.
    pub fn solve(&self, inst: &AssignmentInstance, budget: &Budget) -> Option<crate::SolveOutcome> {
        match self.solve_status_with_budget(inst, None, budget) {
            SolveStatus::Optimal(o) | SolveStatus::Feasible(o) => Some(o),
            SolveStatus::Infeasible { .. } | SolveStatus::Unknown { .. } => None,
        }
    }

    /// Full-status race under `budget`, optionally seeded with a warm
    /// incumbent (e.g. the previous eviction round's repaired optimum).
    pub fn solve_status_with_budget(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&Assignment>,
        budget: &Budget,
    ) -> SolveStatus {
        if budget.is_unlimited() {
            // Same code path as the plain exact solve: bit-identical.
            return self.exact.solve_status_with_budget(inst, warm, budget);
        }
        // Finite budget: widen the heuristic leg of the race to sizes
        // the exact seeder skips, and hand the winner in as the warm
        // incumbent (the exact path keeps whichever of warm/heuristic
        // is strictly cheaper).
        let wide = if inst.tasks() > SEED_SWEEP_CAP {
            let mut best: Option<(Assignment, f64)> = None;
            for cand in [heuristics::min_min(inst), heuristics::sufferage(inst)] {
                if let Some(a) = cand.filter(|a| a.is_feasible(inst)) {
                    let c = a.total_cost(inst);
                    if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                        best = Some((a, c));
                    }
                }
            }
            best
        } else {
            None
        };
        let warm = match (&wide, warm) {
            (Some((wa, wc)), Some(orig)) if *wc < orig.total_cost(inst) => Some(wa),
            (Some((wa, _)), None) => Some(wa),
            (_, orig) => orig,
        };
        self.exact.solve_status_with_budget(inst, warm, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::SolveStatus;

    fn structured(n: usize, k: usize, d: f64, p: f64) -> AssignmentInstance {
        let mut cost = Vec::new();
        let mut time = Vec::new();
        for t in 0..n {
            for g in 0..k {
                cost.push(1.0 + ((t * 31 + g * 17) % 23) as f64);
                time.push(1.0 + ((t * 13 + g * 7) % 5) as f64);
            }
        }
        AssignmentInstance::new(n, k, cost, time, d, p).unwrap()
    }

    #[test]
    fn unlimited_budget_matches_exact_solver_exactly() {
        let i = structured(20, 4, 20.0, 1e6);
        let exact = BranchBound::default().solve_status(&i);
        let raced = Portfolio::default().solve_status_with_budget(&i, None, &Budget::unlimited());
        assert_eq!(exact, raced, "unlimited budget must be bit-identical");
    }

    #[test]
    fn node_budget_yields_anytime_incumbent_with_gap() {
        let i = structured(30, 5, 30.0, 1e6);
        let budget = Budget { deadline: None, max_nodes: 8 };
        match Portfolio::default().solve_status_with_budget(&i, None, &budget) {
            SolveStatus::Feasible(o) => {
                assert!(!o.optimal);
                assert!(o.gap.is_some_and(|g| (0.0..=1.0).contains(&g)));
                assert!(o.lower_bound.is_some_and(|lb| lb <= o.cost + 1e-9));
                o.assignment.check_feasible(&i).unwrap();
            }
            SolveStatus::Optimal(o) => {
                // The seed can prove optimality without any search.
                assert_eq!(o.nodes, 0);
            }
            other => panic!("expected an anytime answer, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_results_are_deterministic() {
        // Node caps (unlike wall-clock deadlines) are reproducible:
        // two identical races must agree bit for bit.
        let i = structured(25, 4, 25.0, 1e6);
        let budget = Budget { deadline: None, max_nodes: 100 };
        let a = Portfolio::default().solve_status_with_budget(&i, None, &budget);
        let b = Portfolio::default().solve_status_with_budget(&i, None, &budget);
        assert_eq!(a, b);
    }
}
