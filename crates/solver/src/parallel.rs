//! Rayon-parallel branch-and-bound.
//!
//! The search tree is expanded breadth-first to a shallow frontier
//! (enough subtrees to keep every core busy), then each frontier node
//! runs the sequential [`Searcher`](crate::branch_bound) on its
//! subtree. Workers share one **global incumbent**: the best cost is an
//! `AtomicU64` holding the `f64` bit pattern (for non-negative floats,
//! the IEEE-754 total order coincides with integer order on the bits,
//! so a CAS min loop works), and the best assignment sits behind a
//! `parking_lot::Mutex` updated only on improvement.
//!
//! The result is deterministic in *value* (every worker proves bounds
//! against the same admissible relaxations) though not in *which*
//! optimal assignment is returned when several are tied.

use crate::bounds::BoundTables;
use crate::branch_bound::{
    gap_for, root_lower_bound, Budget, IncumbentSink, IncumbentSource, Searcher, SolveOutcome,
    SolveStatus, COST_EPS,
};
use crate::heuristics;
use crate::instance::AssignmentInstance;
use crate::solution::Assignment;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Configuration of the parallel branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelBranchBound {
    /// Per-subtree node budget (the global budget is roughly
    /// `frontier × max_nodes_per_subtree`).
    pub max_nodes_per_subtree: u64,
    /// Stop growing the frontier once it holds at least this many
    /// subproblems. Defaults to `4 × rayon::current_num_threads()`.
    pub target_frontier: Option<usize>,
    /// Seed the shared incumbent with the heuristic portfolio.
    pub seed_incumbent: bool,
}

impl Default for ParallelBranchBound {
    fn default() -> Self {
        ParallelBranchBound {
            max_nodes_per_subtree: 50_000_000,
            target_frontier: None,
            seed_incumbent: true,
        }
    }
}

/// Shared incumbent: lock-free cost + locked assignment.
struct SharedIncumbent {
    /// Bit pattern of the best cost (non-negative f64 ⇒ bit order =
    /// value order). Starts at the bits of `f64::INFINITY`.
    cost_bits: AtomicU64,
    best: Mutex<Option<Vec<usize>>>,
    truncated: AtomicBool,
}

impl SharedIncumbent {
    fn new() -> Self {
        SharedIncumbent {
            cost_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            best: Mutex::new(None),
            truncated: AtomicBool::new(false),
        }
    }
}

impl IncumbentSink for SharedIncumbent {
    fn best_cost(&self) -> f64 {
        f64::from_bits(self.cost_bits.load(Ordering::Acquire))
    }

    fn offer(&self, cost: f64, assignment: &[usize]) -> bool {
        debug_assert!(cost >= 0.0, "costs are non-negative by construction");
        let new_bits = cost.to_bits();
        let mut cur = self.cost_bits.load(Ordering::Acquire);
        loop {
            if new_bits >= cur {
                return false; // someone already has an equal-or-better solution
            }
            match self.cost_bits.compare_exchange_weak(
                cur,
                new_bits,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    *self.best.lock() = Some(assignment.to_vec());
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

impl ParallelBranchBound {
    /// Solve in parallel. Semantics match
    /// [`BranchBound::solve`](crate::branch_bound::BranchBound::solve).
    pub fn solve(&self, inst: &AssignmentInstance) -> Option<SolveOutcome> {
        match self.solve_status(inst) {
            SolveStatus::Optimal(o) | SolveStatus::Feasible(o) => Some(o),
            _ => None,
        }
    }

    /// Solve with full status reporting.
    pub fn solve_status(&self, inst: &AssignmentInstance) -> SolveStatus {
        self.solve_status_with_incumbent(inst, None)
    }

    /// Like [`ParallelBranchBound::solve`], additionally seeding the
    /// shared incumbent with a caller-supplied warm assignment (e.g.
    /// the previous eviction round's repaired optimum). Infeasible or
    /// wrong-shaped warm assignments are silently ignored.
    pub fn solve_with_incumbent(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&Assignment>,
    ) -> Option<SolveOutcome> {
        match self.solve_status_with_incumbent(inst, warm) {
            SolveStatus::Optimal(o) | SolveStatus::Feasible(o) => Some(o),
            _ => None,
        }
    }

    /// Full-status variant of
    /// [`ParallelBranchBound::solve_with_incumbent`].
    pub fn solve_status_with_incumbent(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&Assignment>,
    ) -> SolveStatus {
        self.solve_status_with_budget(inst, warm, &Budget::unlimited())
    }

    /// Budgeted variant of
    /// [`ParallelBranchBound::solve_status_with_incumbent`]: every
    /// subtree worker honors the shared wall-clock deadline, and the
    /// node cap applies per subtree (combined with
    /// `max_nodes_per_subtree`). [`Budget::unlimited`] is the same
    /// code path as the plain parallel solve.
    pub fn solve_status_with_budget(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&Assignment>,
        budget: &Budget,
    ) -> SolveStatus {
        let tables = BoundTables::new(inst);
        let shared = SharedIncumbent::new();
        let mut seed_source = IncumbentSource::None;
        if self.seed_incumbent {
            if let Some(seed) = heuristics::seed_incumbent(inst) {
                let cost = seed.total_cost(inst);
                if shared.offer(cost, seed.as_slice()) {
                    seed_source = IncumbentSource::Heuristic;
                }
            }
        }
        if let Some(w) = warm.filter(|a| a.is_feasible(inst)) {
            // accepted only when strictly cheaper than the heuristic
            if shared.offer(w.total_cost(inst), w.as_slice()) {
                seed_source = IncumbentSource::Warm;
            }
        }
        let seed_cost = shared.best_cost();

        let target =
            self.target_frontier.unwrap_or_else(|| 4 * rayon::current_num_threads().max(1));
        let frontier = build_frontier(inst, &tables, target);

        let total_nodes = AtomicU64::new(0);
        let any_deadline_hit = AtomicBool::new(false);
        let subtree_budget = self.max_nodes_per_subtree.min(budget.max_nodes);
        let expired_at_entry = budget.expired();
        frontier.par_iter().for_each(|prefix| {
            let mut s = Searcher::new(inst, &tables, subtree_budget, Some(&shared));
            s.set_deadline(budget.deadline);
            // Adopt the global incumbent cost before starting.
            let g = shared.best_cost();
            if g.is_finite() {
                s.install_incumbent(Vec::new(), g); // cost-only incumbent
            }
            s.apply_prefix(prefix);
            if expired_at_entry {
                s.mark_deadline_hit();
            } else {
                s.dfs(prefix.len());
            }
            total_nodes.fetch_add(s.nodes(), Ordering::Relaxed);
            let (best, _, truncated, deadline_hit) = s.take_best();
            if truncated {
                shared.truncated.store(true, Ordering::Relaxed);
            }
            if deadline_hit {
                any_deadline_hit.store(true, Ordering::Relaxed);
            }
            if let Some((assign, cost)) = best {
                if !assign.is_empty() {
                    shared.offer(cost, &assign);
                }
            }
        });

        let nodes = total_nodes.load(Ordering::Relaxed);
        let truncated = shared.truncated.load(Ordering::Relaxed);
        let deadline_hit = any_deadline_hit.load(Ordering::Relaxed);
        let cost = shared.best_cost();
        let best = shared.best.lock().take();
        match best {
            Some(b) if cost <= inst.payment() + COST_EPS => {
                // offers only accept strict improvements, so a final
                // cost below the seeded one means a worker's search
                // produced the incumbent
                let source = if cost < seed_cost { IncumbentSource::Search } else { seed_source };
                let assignment = Assignment::new(b);
                // canonical task-order cost (see `Searcher::into_status`)
                let cost = assignment.total_cost(inst);
                let (lower_bound, gap) = if truncated {
                    // Root bounds are computed lazily, only when the
                    // search was actually cut short — the untruncated
                    // path stays byte-identical to the pre-budget one.
                    let lb = root_lower_bound(inst, &tables).min(cost);
                    (Some(lb), Some(gap_for(cost, lb)))
                } else {
                    (Some(cost), Some(0.0))
                };
                let outcome = SolveOutcome {
                    assignment,
                    cost,
                    optimal: !truncated,
                    nodes,
                    incumbent_source: source,
                    lower_bound,
                    gap,
                    deadline_hit,
                };
                if truncated {
                    SolveStatus::Feasible(outcome)
                } else {
                    SolveStatus::Optimal(outcome)
                }
            }
            _ => {
                if truncated {
                    SolveStatus::Unknown { nodes }
                } else {
                    SolveStatus::Infeasible { nodes }
                }
            }
        }
    }
}

/// Breadth-first expansion of the first few task levels into prefix
/// assignments (each prefix = the GSP choice per task in branch
/// order). Only prefixes that pass the same per-child feasibility
/// screens the DFS uses are kept, so no subtree is enumerated twice
/// and none is lost.
fn build_frontier(
    inst: &AssignmentInstance,
    tables: &BoundTables,
    target: usize,
) -> Vec<Vec<usize>> {
    let n = inst.tasks();
    let k = inst.gsps();
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0;
    while frontier.len() < target && depth < n && depth < 8 {
        let task = tables.order[depth];
        let mut next = Vec::with_capacity(frontier.len() * k);
        for prefix in &frontier {
            // Recompute loads/counts for this prefix (prefixes are tiny).
            let mut loads = vec![0.0; k];
            let mut counts = vec![0usize; k];
            let mut committed = 0.0;
            for (d, &g) in prefix.iter().enumerate() {
                let t = tables.order[d];
                loads[g] += inst.time(t, g);
                counts[g] += 1;
                committed += inst.cost(t, g);
            }
            let idle = counts.iter().filter(|&&c| c == 0).count();
            let remaining = n - depth;
            if remaining < idle {
                continue;
            }
            let must_cover = remaining == idle;
            for &g in tables.children(task, k) {
                let g = g as usize;
                if must_cover && counts[g] != 0 {
                    continue;
                }
                if loads[g] + inst.time(task, g) > inst.deadline() + 1e-9 {
                    continue;
                }
                if committed + inst.cost(task, g) + tables.suffix_min_cost[depth + 1]
                    > inst.payment() + COST_EPS
                {
                    break; // children cost-sorted
                }
                let mut child = prefix.clone();
                child.push(g);
                next.push(child);
            }
        }
        if next.is_empty() {
            // Every extension is infeasible: the prefixes themselves
            // are dead ends, but returning them lets the workers prove
            // that cheaply.
            return frontier;
        }
        frontier = next;
        depth += 1;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::BranchBound;

    fn structured(n: usize, k: usize, d: f64, p: f64) -> AssignmentInstance {
        let mut cost = Vec::new();
        let mut time = Vec::new();
        for t in 0..n {
            for g in 0..k {
                cost.push(1.0 + ((t * 31 + g * 17) % 23) as f64);
                time.push(1.0 + ((t * 13 + g * 7) % 5) as f64);
            }
        }
        AssignmentInstance::new(n, k, cost, time, d, p).unwrap()
    }

    #[test]
    fn matches_sequential_optimum() {
        let i = structured(40, 5, 40.0, 1e6);
        let seq = BranchBound::default().solve(&i).unwrap();
        let par = ParallelBranchBound::default().solve(&i).unwrap();
        assert!(seq.optimal && par.optimal);
        assert!((seq.cost - par.cost).abs() < 1e-9, "{} vs {}", seq.cost, par.cost);
        par.assignment.check_feasible(&i).unwrap();
    }

    #[test]
    fn detects_infeasible() {
        let i = AssignmentInstance::new(2, 2, vec![10.0; 4], vec![1.0; 4], 10.0, 5.0).unwrap();
        match ParallelBranchBound::default().solve_status(&i) {
            SolveStatus::Infeasible { .. } => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadline_agreement() {
        let i = structured(24, 4, 12.0, 1e6);
        let seq = BranchBound::default().solve_status(&i);
        let par = ParallelBranchBound::default().solve_status(&i);
        match (seq, par) {
            (SolveStatus::Optimal(a), SolveStatus::Optimal(b)) => {
                assert!((a.cost - b.cost).abs() < 1e-9);
            }
            (SolveStatus::Infeasible { .. }, SolveStatus::Infeasible { .. }) => {}
            other => panic!("solvers disagree: {other:?}"),
        }
    }

    #[test]
    fn frontier_covers_whole_tree() {
        // With a huge target, the frontier expansion must not lose or
        // duplicate subtrees: verified indirectly by optimality above;
        // here check the frontier respects participation.
        let i = structured(6, 3, 100.0, 1e6);
        let tables = BoundTables::new(&i);
        let frontier = build_frontier(&i, &tables, 10_000);
        // all prefixes have the same depth and are distinct
        let depth = frontier[0].len();
        assert!(frontier.iter().all(|p| p.len() == depth));
        let mut sorted = frontier.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), frontier.len());
    }

    #[test]
    fn shared_incumbent_orders_costs_correctly() {
        let s = SharedIncumbent::new();
        assert!(s.best_cost().is_infinite());
        assert!(s.offer(10.0, &[0, 1]));
        assert!(!s.offer(11.0, &[1, 0]));
        assert!(!s.offer(10.0, &[1, 0])); // ties rejected
        assert!(s.offer(2.5, &[1, 1]));
        assert_eq!(s.best_cost(), 2.5);
        assert_eq!(s.best.lock().clone().unwrap(), vec![1, 1]);
    }
}
