//! Assignments (solutions of the IP) and their feasibility audit.

use crate::instance::AssignmentInstance;
use serde::{Deserialize, Serialize};

/// A complete mapping `π : T → C` of tasks onto GSPs — the decision
/// variables `σ(T, G)` of eq. (8) in compact form: `gsp_of[t]` is the
/// single GSP with `σ(t, ·) = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    gsp_of: Vec<usize>,
}

/// Which IP constraint a candidate assignment violates.
#[derive(Debug, Clone, PartialEq)]
pub enum FeasibilityError {
    /// Assignment length differs from the instance's task count
    /// (violates coverage, eq. (12)).
    WrongLength {
        /// Tasks in the assignment.
        got: usize,
        /// Tasks in the instance.
        expected: usize,
    },
    /// A task is mapped to a GSP index outside the instance.
    GspOutOfRange {
        /// The offending task.
        task: usize,
        /// The mapped GSP.
        gsp: usize,
    },
    /// Total cost exceeds the payment `P` (eq. (10)).
    PaymentExceeded {
        /// Total assignment cost.
        cost: f64,
        /// Payment cap.
        payment: f64,
    },
    /// Some GSP's total execution time exceeds the deadline (eq. (11)).
    DeadlineExceeded {
        /// The overloaded GSP.
        gsp: usize,
        /// Its total load in seconds.
        load: f64,
        /// The deadline.
        deadline: f64,
    },
    /// Some GSP received no task (eq. (13)).
    IdleGsp {
        /// The idle GSP.
        gsp: usize,
    },
}

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeasibilityError::WrongLength { got, expected } => {
                write!(f, "assignment covers {got} tasks, instance has {expected}")
            }
            FeasibilityError::GspOutOfRange { task, gsp } => {
                write!(f, "task {task} mapped to nonexistent GSP {gsp}")
            }
            FeasibilityError::PaymentExceeded { cost, payment } => {
                write!(f, "total cost {cost} exceeds payment {payment}")
            }
            FeasibilityError::DeadlineExceeded { gsp, load, deadline } => {
                write!(f, "GSP {gsp} load {load}s exceeds deadline {deadline}s")
            }
            FeasibilityError::IdleGsp { gsp } => write!(f, "GSP {gsp} received no task"),
        }
    }
}

impl std::error::Error for FeasibilityError {}

impl Assignment {
    /// Wrap a task→GSP vector.
    pub fn new(gsp_of: Vec<usize>) -> Self {
        Assignment { gsp_of }
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.gsp_of.len()
    }

    /// True when no task is assigned.
    pub fn is_empty(&self) -> bool {
        self.gsp_of.is_empty()
    }

    /// The GSP executing `task`.
    #[inline]
    pub fn gsp_of(&self, task: usize) -> usize {
        self.gsp_of[task]
    }

    /// Borrow the underlying mapping.
    pub fn as_slice(&self) -> &[usize] {
        &self.gsp_of
    }

    /// Tasks assigned to `gsp`.
    pub fn tasks_of(&self, gsp: usize) -> Vec<usize> {
        self.gsp_of.iter().enumerate().filter(|(_, &g)| g == gsp).map(|(t, _)| t).collect()
    }

    /// Objective value (eq. (9)): total execution cost.
    pub fn total_cost(&self, inst: &AssignmentInstance) -> f64 {
        self.gsp_of.iter().enumerate().map(|(t, &g)| inst.cost(t, g)).sum()
    }

    /// Per-GSP total execution time (left side of eq. (11)).
    pub fn loads(&self, inst: &AssignmentInstance) -> Vec<f64> {
        let mut loads = vec![0.0; inst.gsps()];
        for (t, &g) in self.gsp_of.iter().enumerate() {
            loads[g] += inst.time(t, g);
        }
        loads
    }

    /// The makespan: the largest per-GSP load. The VO finishes the
    /// program at this time (all GSPs run in parallel).
    pub fn makespan(&self, inst: &AssignmentInstance) -> f64 {
        self.loads(inst).into_iter().fold(0.0, f64::max)
    }

    /// Number of tasks on each GSP.
    pub fn task_counts(&self, inst: &AssignmentInstance) -> Vec<usize> {
        let mut counts = vec![0usize; inst.gsps()];
        for &g in &self.gsp_of {
            counts[g] += 1;
        }
        counts
    }

    /// Full feasibility audit against every IP constraint. Returns the
    /// first violated constraint, checked in the paper's numbering
    /// order (10), (11), (13); coverage (12) is structural.
    pub fn check_feasible(&self, inst: &AssignmentInstance) -> Result<(), FeasibilityError> {
        if self.gsp_of.len() != inst.tasks() {
            return Err(FeasibilityError::WrongLength {
                got: self.gsp_of.len(),
                expected: inst.tasks(),
            });
        }
        for (t, &g) in self.gsp_of.iter().enumerate() {
            if g >= inst.gsps() {
                return Err(FeasibilityError::GspOutOfRange { task: t, gsp: g });
            }
        }
        let cost = self.total_cost(inst);
        if cost > inst.payment() + 1e-9 {
            return Err(FeasibilityError::PaymentExceeded { cost, payment: inst.payment() });
        }
        for (g, &load) in self.loads(inst).iter().enumerate() {
            if load > inst.deadline() + 1e-9 {
                return Err(FeasibilityError::DeadlineExceeded {
                    gsp: g,
                    load,
                    deadline: inst.deadline(),
                });
            }
        }
        for (g, &count) in self.task_counts(inst).iter().enumerate() {
            if count == 0 {
                return Err(FeasibilityError::IdleGsp { gsp: g });
            }
        }
        Ok(())
    }

    /// Convenience: true iff `check_feasible` passes.
    pub fn is_feasible(&self, inst: &AssignmentInstance) -> bool {
        self.check_feasible(inst).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::AssignmentInstance;

    fn inst() -> AssignmentInstance {
        AssignmentInstance::new(
            3,
            2,
            vec![1.0, 4.0, 2.0, 1.0, 3.0, 2.0],
            vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0],
            4.0,
            100.0,
        )
        .unwrap()
    }

    #[test]
    fn cost_and_loads() {
        let a = Assignment::new(vec![0, 1, 0]);
        let i = inst();
        assert_eq!(a.total_cost(&i), 1.0 + 1.0 + 3.0);
        assert_eq!(a.loads(&i), vec![2.0, 2.0]);
        assert_eq!(a.makespan(&i), 2.0);
        assert_eq!(a.task_counts(&i), vec![2, 1]);
        assert_eq!(a.tasks_of(0), vec![0, 2]);
    }

    #[test]
    fn feasible_assignment_passes() {
        let a = Assignment::new(vec![0, 1, 0]);
        assert!(a.is_feasible(&inst()));
    }

    #[test]
    fn idle_gsp_detected() {
        let a = Assignment::new(vec![0, 0, 0]);
        assert_eq!(a.check_feasible(&inst()), Err(FeasibilityError::IdleGsp { gsp: 1 }));
    }

    #[test]
    fn deadline_violation_detected() {
        // all three tasks on GSP 1: load = 6 > 4
        let a = Assignment::new(vec![1, 1, 1]);
        match a.check_feasible(&inst()) {
            Err(FeasibilityError::DeadlineExceeded { gsp: 1, load, .. }) => {
                assert!((load - 6.0).abs() < 1e-12);
            }
            other => panic!("expected deadline violation, got {other:?}"),
        }
    }

    #[test]
    fn payment_violation_detected() {
        let i = AssignmentInstance::new(
            2,
            2,
            vec![10.0, 10.0, 10.0, 10.0],
            vec![1.0, 1.0, 1.0, 1.0],
            10.0,
            5.0,
        )
        .unwrap();
        let a = Assignment::new(vec![0, 1]);
        assert!(matches!(a.check_feasible(&i), Err(FeasibilityError::PaymentExceeded { .. })));
    }

    #[test]
    fn wrong_length_detected() {
        let a = Assignment::new(vec![0, 1]);
        assert!(matches!(
            a.check_feasible(&inst()),
            Err(FeasibilityError::WrongLength { got: 2, expected: 3 })
        ));
    }

    #[test]
    fn out_of_range_gsp_detected() {
        let a = Assignment::new(vec![0, 1, 7]);
        assert!(matches!(
            a.check_feasible(&inst()),
            Err(FeasibilityError::GspOutOfRange { task: 2, gsp: 7 })
        ));
    }

    #[test]
    fn empty_assignment_accessors() {
        let a = Assignment::new(vec![]);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
