//! Tiny flag parser shared by the subcommands: `--key value` pairs
//! plus bare `--flag` booleans. No external dependency; exhaustive —
//! unknown flags are errors, so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `argv` given the sets of value-taking and boolean flags
    /// (names without the leading `--`).
    pub fn parse(
        argv: &[String],
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg:?}"));
            };
            if name == "help" || name == "h" {
                return Err("help".to_string());
            }
            if bool_flags.contains(&name) {
                flags.switches.push(name.to_string());
            } else if value_flags.contains(&name) {
                let value = it.next().ok_or_else(|| format!("--{name} requires a value"))?;
                flags.values.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(flags)
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Required string value.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Parsed numeric value with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// Boolean switch presence.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Comma-separated usize list (e.g. `--members 0,2,5`).
    pub fn list(&self, name: &str) -> Result<Option<Vec<usize>>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|p| p.trim().parse().map_err(|_| format!("invalid index in --{name}: {p:?}")))
                .collect::<Result<Vec<usize>, String>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &v(&["--tasks", "64", "--json", "--out", "x.json"]),
            &["tasks", "out"],
            &["json"],
        )
        .unwrap();
        assert_eq!(f.get("tasks"), Some("64"));
        assert_eq!(f.num("tasks", 0usize).unwrap(), 64);
        assert!(f.has("json"));
        assert_eq!(f.require("out").unwrap(), "x.json");
    }

    #[test]
    fn defaults_and_missing() {
        let f = Flags::parse(&v(&[]), &["tasks"], &[]).unwrap();
        assert_eq!(f.num("tasks", 32usize).unwrap(), 32);
        assert!(f.require("tasks").is_err());
        assert!(!f.has("json"));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Flags::parse(&v(&["--bogus"]), &["tasks"], &[]).is_err());
        assert!(Flags::parse(&v(&["bare"]), &["tasks"], &[]).is_err());
        assert!(Flags::parse(&v(&["--tasks"]), &["tasks"], &[]).is_err());
        let f = Flags::parse(&v(&["--tasks", "xyz"]), &["tasks"], &[]).unwrap();
        assert!(f.num("tasks", 0usize).is_err());
    }

    #[test]
    fn member_lists() {
        let f = Flags::parse(&v(&["--members", "0, 2,5"]), &["members"], &[]).unwrap();
        assert_eq!(f.list("members").unwrap(), Some(vec![0, 2, 5]));
        let g = Flags::parse(&v(&[]), &["members"], &[]).unwrap();
        assert_eq!(g.list("members").unwrap(), None);
        let bad = Flags::parse(&v(&["--members", "0,x"]), &["members"], &[]).unwrap();
        assert!(bad.list("members").is_err());
    }
}
