//! `gridvo` — the command-line interface.
//!
//! ```text
//! gridvo generate scenario --tasks 128 --gsps 16 --seed 7 --out scenario.json
//! gridvo generate trace    --jobs 10000 --seed 7 --out atlas.swf
//! gridvo form    --scenario scenario.json [--mechanism tvof|rvof] [--seed 1] [--out outcome.json]
//! gridvo execute --scenario scenario.json [--faults 0.2] [--fault-rounds 4] [--out report.json]
//! gridvo solve   --scenario scenario.json [--members 0,2,5]
//! gridvo game    --scenario scenario.json
//! gridvo stats   --swf atlas.swf
//! gridvo dynamic --rounds 16 --gsps 16 --tasks 64 --seed 1
//! gridvo serve   [--scenario scenario.json] [--addr 127.0.0.1:0] [--workers 2]
//! gridvo request form --addr 127.0.0.1:PORT --seed 1
//! ```
//!
//! Scenario files are JSON serializations of
//! [`gridvo_core::FormationScenario`]; traces are Standard Workload
//! Format text. Every subcommand is deterministic under `--seed`.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("gridvo: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Dispatch a full argument vector (exposed for tests).
pub fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "generate" => commands::generate::run(rest),
        "form" => commands::form::run(rest),
        "execute" => commands::execute::run(rest),
        "solve" => commands::solve::run(rest),
        "game" => commands::game::run(rest),
        "stats" => commands::stats::run(rest),
        "dynamic" => commands::dynamic::run(rest),
        "serve" => commands::serve::run(rest),
        "request" => commands::request::run(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: gridvo <subcommand>\n\
     \n\
     subcommands:\n\
       generate scenario|trace   build inputs (Table-I scenario JSON, SWF trace)\n\
       form                      run TVOF/RVOF on a scenario file\n\
       execute                   form a VO and run it against injected faults\n\
       solve                     solve one task-assignment IP\n\
       game                      coalitional-game analysis (Shapley, core)\n\
       stats                     summarize an SWF trace\n\
       dynamic                   multi-round dynamic formation\n\
       serve                     run the VO-formation daemon (loopback TCP)\n\
       request                   send one request to a running daemon\n\
     \n\
     run `gridvo <subcommand> --help` for options"
        .to_string()
}
