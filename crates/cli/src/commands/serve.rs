//! `gridvo serve` — run the formation daemon.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::args::Flags;
use crate::commands::load_scenario;
use gridvo_service::{PersistConfig, ServerConfig, ServerHandle};
use gridvo_sim::instance_gen::ScenarioGenerator;
use gridvo_sim::TableI;
use gridvo_store::FsyncPolicy;
use rand::SeedableRng;

const HELP: &str = "\
usage: gridvo serve [--scenario FILE | --tasks N --gsps M --seed S]
                    [--addr 127.0.0.1:0] [--workers W] [--queue Q]
                    [--cache C] [--deadline-ms D] [--shards S]
                    [--data-dir DIR] [--fsync POLICY] [--compact-bytes B]
                    [--rate-limit R] [--app-queue Q] [--min-free K]
                    [--lease-ttl-ms T]

Starts the long-running VO-formation daemon on a loopback TCP port,
serving the newline-delimited-JSON protocol (see `gridvo request`).
The provider pool is bootstrapped from --scenario, or generated from
Table-I parameters when no file is given. Prints `listening on
HOST:PORT` once ready; runs until SIGTERM (or, when stdin is a
supervising pipe, until that pipe closes), then shuts
down cleanly (exit 0).

  --workers      worker threads draining the job queue (default 2)
  --queue        job-queue bound; beyond it requests get Busy (default 64)
  --cache        solve-cache capacity in entries, 0 disables (default 4096)
  --deadline-ms  default per-request deadline, 0 = none (default 0)
  --shards       registry write shards (GSP id modulo S; default 8) —
                 readers always run on lock-free epoch snapshots

Durability (off by default — without --data-dir the registry lives
purely in memory):

  --data-dir       journal registry mutations here; a non-empty
                   directory is recovered from, and then wins over
                   --scenario / generation
  --fsync          per-event | per-epoch | per-epoch=N | off
                   (default per-epoch: one fdatasync per 32-epoch
                   durability window)
  --compact-bytes  journal size triggering snapshot+truncate
                   compaction (default 1048576)

Market admission (see `gridvo request form --app` / `leases`):

  --rate-limit     per-connection request rate (req/s); beyond it
                   requests get Throttled (default off)
  --app-queue      outstanding market forms allowed per application
                   before Busy (default 16)
  --min-free       shed market forms with PoolExhausted when fewer
                   than K GSPs are uncommitted (default 1)
  --lease-ttl-ms   lease time-to-live; expired leases are released
                   server-side, journaled as reason \"expired\"
                   (default 0 = never)";

/// SIGTERM flag, set by a minimal C-ABI handler. The daemon's main
/// loop polls it; no async-signal-unsafe work happens in the handler.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::{AtomicBool, Ordering, TERM};

    /// Quiet-shutdown marker so double signals don't re-enter.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        if !INSTALLED.swap(true, Ordering::SeqCst) {
            const SIGTERM: i32 = 15;
            const SIGINT: i32 = 2;
            // SAFETY: registering a handler that only stores to an
            // AtomicBool — async-signal-safe by construction.
            unsafe {
                signal(SIGTERM, on_term);
                signal(SIGINT, on_term);
            }
        }
    }
}

/// Is stdin a pipe (as opposed to a terminal, /dev/null, …)?
/// Resolved via procfs; anywhere that's unreadable we assume pipe,
/// preserving the close-to-shutdown contract.
fn stdin_is_pipe() -> bool {
    match std::fs::read_link("/proc/self/fd/0") {
        Ok(target) => target.to_string_lossy().starts_with("pipe:"),
        Err(_) => true,
    }
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        argv,
        &[
            "scenario",
            "tasks",
            "gsps",
            "seed",
            "addr",
            "workers",
            "queue",
            "cache",
            "deadline-ms",
            "shards",
            "data-dir",
            "fsync",
            "compact-bytes",
            "rate-limit",
            "app-queue",
            "min-free",
            "lease-ttl-ms",
        ],
        &[],
    )
    .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;

    let scenario = match flags.get("scenario") {
        Some(path) => load_scenario(path)?,
        None => {
            let tasks: usize = flags.num("tasks", 32)?;
            let gsps: usize = flags.num("gsps", 6)?;
            let seed: u64 = flags.num("seed", 1)?;
            if tasks < gsps {
                return Err(format!("--tasks {tasks} must be at least --gsps {gsps}"));
            }
            let cfg = TableI { gsps, task_sizes: vec![tasks], ..TableI::small() };
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            ScenarioGenerator::new(cfg)
                .scenario(tasks, &mut rng)
                .map_err(|e| format!("generation failed: {e}"))?
        }
    };

    let persistence = match flags.get("data-dir") {
        None => {
            for durability_only in ["fsync", "compact-bytes"] {
                if flags.get(durability_only).is_some() {
                    return Err(format!("--{durability_only} requires --data-dir"));
                }
            }
            None
        }
        Some(dir) => {
            let mut persist = PersistConfig::new(dir);
            if let Some(policy) = flags.get("fsync") {
                persist.fsync = FsyncPolicy::parse(policy).ok_or_else(|| {
                    format!(
                        "invalid --fsync {policy:?} (per-event | per-epoch | per-epoch=N | off)"
                    )
                })?;
            }
            persist.compact_bytes = flags.num("compact-bytes", persist.compact_bytes)?;
            Some(persist)
        }
    };

    let config = ServerConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        workers: flags.num("workers", 2)?,
        queue_capacity: flags.num("queue", 64)?,
        cache_capacity: flags.num("cache", 4096)?,
        default_deadline_ms: flags.num("deadline-ms", 0)?,
        shards: flags.num("shards", gridvo_service::DEFAULT_SHARDS)?,
        persistence,
        rate_limit: match flags.get("rate-limit") {
            None => None,
            Some(_) => {
                let rate: f64 = flags.num("rate-limit", 0.0)?;
                if rate <= 0.0 {
                    return Err(format!("--rate-limit {rate} must be positive"));
                }
                Some(rate)
            }
        },
        app_queue_capacity: flags.num("app-queue", 16)?,
        min_free: flags.num("min-free", 1)?,
        lease_ttl_ms: flags.num("lease-ttl-ms", 0)?,
    };
    let handle =
        ServerHandle::spawn(&scenario, config).map_err(|e| format!("cannot start daemon: {e}"))?;

    // The e2e test and scripts parse this exact line for the port.
    println!("listening on {}", handle.addr());
    // The crash-injection harness parses this line for the epoch.
    if let Some(epoch) = handle.recovered_epoch() {
        println!("recovered registry at epoch {epoch}");
    }
    let pool = handle.registry_snapshot();
    println!("pool: {} GSPs, {} tasks; shutdown on SIGTERM or stdin close", pool.gsps, pool.tasks);
    use std::io::Write;
    std::io::stdout().flush().ok();

    #[cfg(unix)]
    sig::install();

    // Stdin-EOF watcher: a supervisor (or a test) holding our stdin
    // open as a pipe can stop us by closing it. Only armed when stdin
    // actually IS a pipe — a terminal would stop a backgrounded
    // daemon with SIGTTIN on read, and /dev/null (systemd-style) is
    // at EOF from the start, which would shut us down instantly.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    if stdin_is_pipe() {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }

    while !TERM.load(Ordering::SeqCst) && !stdin_closed.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    let metrics = handle.metrics_snapshot();
    handle.shutdown();
    println!(
        "shut down cleanly: {} requests served, {} busy-shed, cache hit rate {:.2}",
        metrics.requests_total, metrics.busy_rejections, metrics.cache_hit_rate
    );
    Ok(())
}
