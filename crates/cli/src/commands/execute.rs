//! `gridvo execute` — form a VO and run it against injected faults.

use crate::args::Flags;
use crate::commands::{load_scenario, write_json};
use gridvo_core::mechanism::{FormationConfig, Mechanism};
use gridvo_core::{ExecutionStatus, FaultPlan};
use gridvo_sim::faults::FaultModel;
use rand::SeedableRng;

const HELP: &str = "\
usage: gridvo execute --scenario FILE [--mechanism tvof|rvof] [--seed S]
                      [--faults RATE] [--fault-rounds K] [--plan plan.json]
                      [--out report.json]

Runs Algorithm 1, then executes the selected VO against a fault plan:
crashes, slowdowns and silent task drops, recovered repair-first with a
full re-solve fallback. The plan is drawn from a seeded model at the
given per-member, per-round rate (--faults, default 0.2 over
--fault-rounds rounds, default 4), or loaded verbatim from --plan.
With an empty plan, execution is a pure pass-through of the formation
output.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        argv,
        &["scenario", "mechanism", "seed", "faults", "fault-rounds", "plan", "out"],
        &[],
    )
    .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let seed: u64 = flags.num("seed", 1)?;
    let rate: f64 = flags.num("faults", 0.2)?;
    let rounds: usize = flags.num("fault-rounds", 4)?;
    let mech = match flags.get("mechanism").unwrap_or("tvof") {
        "tvof" => Mechanism::tvof(FormationConfig::default()),
        "rvof" => Mechanism::rvof(FormationConfig::default()),
        other => return Err(format!("unknown mechanism {other:?} (tvof|rvof)")),
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let outcome = mech.run(&scenario, &mut rng).map_err(|e| e.to_string())?;
    let Some(vo) = &outcome.selected else {
        println!("no feasible VO — nothing to execute");
        return Ok(());
    };
    println!("formed VO {:?}: payoff/GSP {:.2}, cost {:.1}", vo.members, vo.payoff_share, vo.cost);

    let plan = match flags.get("plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read plan {path}: {e}"))?;
            serde_json::from_str::<FaultPlan>(&text)
                .map_err(|e| format!("invalid fault plan JSON in {path}: {e}"))?
        }
        None => FaultModel::with_rate(rate, rounds).plan(&vo.members, &mut rng),
    };
    println!("fault plan: {} event(s) over {} round(s)", plan.len(), plan.horizon());

    let report = mech.execute(&scenario, vo, &plan).map_err(|e| e.to_string())?;

    if !report.recoveries.is_empty() {
        println!("\nround  gsp  fault        recovery  orphans  cost delta     nodes   avg rep");
        for r in &report.recoveries {
            let fault = match r.fault {
                gridvo_core::FaultKind::Crash => "crash".to_string(),
                gridvo_core::FaultKind::Slowdown { factor } => format!("slow x{factor:.2}"),
                gridvo_core::FaultKind::SilentDrop { tasks } => format!("drop {tasks}"),
            };
            println!(
                "{:>5}  {:>3}  {:<11}  {:<8}  {:>7}  {:>+10.2}  {:>8}  {:>8.4}",
                r.round,
                r.gsp,
                fault,
                r.recovery_kind.as_str(),
                r.orphaned_tasks,
                r.cost_delta,
                r.resolve_nodes,
                r.avg_reputation_after,
            );
        }
    }
    match report.status {
        ExecutionStatus::Completed { degraded } => println!(
            "\ncompleted{}: members {:?}, cost {:.1}, payoff/GSP {:.2} (retention {:.2})",
            if degraded { " (degraded)" } else { "" },
            report.final_members,
            report.final_cost,
            report.final_payoff_share,
            report.payoff_retention,
        ),
        ExecutionStatus::Abandoned { round } => {
            println!("\nabandoned in round {round}: no feasible recovery — the program is lost")
        }
    }

    if let Some(out) = flags.get("out") {
        write_json(out, &report)?;
    }
    Ok(())
}
