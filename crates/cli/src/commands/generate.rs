//! `gridvo generate scenario|trace` — build experiment inputs.

use crate::args::Flags;
use crate::commands::write_json;
use gridvo_sim::instance_gen::ScenarioGenerator;
use gridvo_sim::TableI;
use gridvo_workload::atlas::AtlasGenerator;
use rand::SeedableRng;

const HELP: &str = "\
usage: gridvo generate scenario --out FILE [--tasks N] [--gsps M] [--seed S]
       gridvo generate trace    --out FILE [--jobs N] [--seed S]

scenario: a Table-I formation scenario (JSON) — GSP speeds, Braun cost
matrix, consistent time matrix, calibrated deadline/payment, ER trust.
trace: a synthetic LLNL-Atlas-like workload in Standard Workload Format.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let Some((kind, rest)) = argv.split_first() else {
        return Err(HELP.to_string());
    };
    match kind.as_str() {
        "scenario" => scenario(rest),
        "trace" => trace(rest),
        _ => Err(HELP.to_string()),
    }
}

fn scenario(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["out", "tasks", "gsps", "seed"], &[]).map_err(|e| {
        if e == "help" {
            HELP.to_string()
        } else {
            e
        }
    })?;
    let out = flags.require("out")?;
    let tasks: usize = flags.num("tasks", 128)?;
    let gsps: usize = flags.num("gsps", 16)?;
    let seed: u64 = flags.num("seed", 1)?;
    if tasks < gsps {
        return Err(format!("--tasks {tasks} must be at least --gsps {gsps} (constraint (13))"));
    }
    let cfg = TableI { gsps, task_sizes: vec![tasks], ..TableI::default() };
    let generator = ScenarioGenerator::new(cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scenario =
        generator.scenario(tasks, &mut rng).map_err(|e| format!("generation failed: {e}"))?;
    println!(
        "scenario: {} tasks on {} GSPs, deadline {:.0} s, payment {:.0}",
        scenario.task_count(),
        scenario.gsp_count(),
        scenario.deadline(),
        scenario.payment()
    );
    write_json(out, &scenario)
}

fn trace(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["out", "jobs", "seed"], &[]).map_err(|e| {
        if e == "help" {
            HELP.to_string()
        } else {
            e
        }
    })?;
    let out = flags.require("out")?;
    let jobs: usize = flags.num("jobs", 10_000)?;
    let seed: u64 = flags.num("seed", 1)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let trace = AtlasGenerator::default().generate(&mut rng, jobs);
    std::fs::write(out, trace.to_swf()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({jobs} jobs)");
    Ok(())
}
