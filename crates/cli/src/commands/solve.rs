//! `gridvo solve` — one task-assignment IP, standalone.

use crate::args::Flags;
use crate::commands::load_scenario;
use gridvo_solver::branch_bound::{BranchBound, Budget, SolveStatus};
use gridvo_solver::heuristics::{self, Heuristic};
use gridvo_solver::parallel::ParallelBranchBound;
use gridvo_solver::portfolio::Portfolio;
use std::time::{Duration, Instant};

const HELP: &str = "\
usage: gridvo solve --scenario FILE [--members 0,2,5]
                    [--solver exact|parallel|portfolio|greedy|min-min|max-min|sufferage]
                    [--deadline-ms MS] [--max-nodes N]

Solves the task-assignment IP for the given VO (default: all GSPs),
printing the status, optimal cost, per-GSP loads and task counts.
--deadline-ms and --max-nodes bound the solve (exact, parallel and
portfolio solvers); a truncated solve prints its best anytime
incumbent plus the relative optimality gap.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags =
        Flags::parse(argv, &["scenario", "members", "solver", "deadline-ms", "max-nodes"], &[])
            .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let members = flags.list("members")?.unwrap_or_else(|| (0..scenario.gsp_count()).collect());
    for &m in &members {
        if m >= scenario.gsp_count() {
            return Err(format!("GSP {m} out of range (m = {})", scenario.gsp_count()));
        }
    }
    let inst = scenario
        .instance_for(&members)
        .ok_or_else(|| "VO cannot host the program (constraint (13))".to_string())?;

    let budget = Budget {
        deadline: match flags.num("deadline-ms", 0u64)? {
            0 => None,
            ms => Some(Instant::now() + Duration::from_millis(ms)),
        },
        max_nodes: match flags.num("max-nodes", 0u64)? {
            0 => u64::MAX,
            n => n,
        },
    };
    let report_status = |status: SolveStatus| match status {
        SolveStatus::Optimal(o) => {
            println!(
                "status: OPTIMAL (proven, {} nodes, incumbent: {})",
                o.nodes,
                o.incumbent_source.as_str()
            );
            Some((o.assignment, o.cost))
        }
        SolveStatus::Feasible(o) => {
            println!(
                "status: FEASIBLE ({}, {} nodes, incumbent: {}, gap {})",
                if o.deadline_hit { "deadline-truncated" } else { "budget-truncated" },
                o.nodes,
                o.incumbent_source.as_str(),
                o.gap.map_or("unknown".to_string(), |g| format!("{:.2}%", g * 100.0)),
            );
            Some((o.assignment, o.cost))
        }
        SolveStatus::Infeasible { nodes } => {
            println!("status: INFEASIBLE (proven, {nodes} nodes)");
            None
        }
        SolveStatus::Unknown { nodes } => {
            println!("status: UNKNOWN (budget exhausted, {nodes} nodes)");
            None
        }
    };
    let solver_name = flags.get("solver").unwrap_or("exact");
    let solved = match solver_name {
        "exact" => {
            report_status(BranchBound::default().solve_status_with_budget(&inst, None, &budget))
        }
        "portfolio" => {
            report_status(Portfolio::default().solve_status_with_budget(&inst, None, &budget))
        }
        "parallel" => {
            match ParallelBranchBound::default().solve_status_with_budget(&inst, None, &budget) {
                SolveStatus::Optimal(o) | SolveStatus::Feasible(o) => {
                    println!(
                        "status: {} ({} nodes, incumbent: {})",
                        if o.optimal { "OPTIMAL" } else { "FEASIBLE" },
                        o.nodes,
                        o.incumbent_source.as_str()
                    );
                    Some((o.assignment, o.cost))
                }
                SolveStatus::Infeasible { nodes } | SolveStatus::Unknown { nodes } => {
                    println!("status: no feasible assignment found ({nodes} nodes)");
                    None
                }
            }
        }
        name => {
            let kind = match name {
                "greedy" => Heuristic::GreedyCost,
                "min-min" => Heuristic::MinMin,
                "max-min" => Heuristic::MaxMin,
                "sufferage" => Heuristic::Sufferage,
                other => return Err(format!("unknown solver {other:?}")),
            };
            heuristics::run(kind, &inst).map(|a| {
                let c = a.total_cost(&inst);
                println!("status: HEURISTIC-FEASIBLE (no optimality proof)");
                (a, c)
            })
        }
    };

    let Some((assignment, cost)) = solved else {
        println!("no feasible assignment for VO {members:?}");
        return Ok(());
    };
    println!(
        "VO {members:?}: cost {cost:.2} of payment {:.0} → value {:.2}",
        inst.payment(),
        (inst.payment() - cost).max(0.0)
    );
    println!("gsp  tasks  load (s)  deadline {:.0} s", inst.deadline());
    let loads = assignment.loads(&inst);
    let counts = assignment.task_counts(&inst);
    for (i, &g) in members.iter().enumerate() {
        println!("{g:>3}  {:>5}  {:>8.1}", counts[i], loads[i]);
    }
    Ok(())
}
