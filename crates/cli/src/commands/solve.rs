//! `gridvo solve` — one task-assignment IP, standalone.

use crate::args::Flags;
use crate::commands::load_scenario;
use gridvo_solver::branch_bound::{BranchBound, SolveStatus};
use gridvo_solver::heuristics::{self, Heuristic};
use gridvo_solver::parallel::ParallelBranchBound;

const HELP: &str = "\
usage: gridvo solve --scenario FILE [--members 0,2,5]
                    [--solver exact|parallel|greedy|min-min|max-min|sufferage]

Solves the task-assignment IP for the given VO (default: all GSPs),
printing the status, optimal cost, per-GSP loads and task counts.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["scenario", "members", "solver"], &[]).map_err(|e| {
        if e == "help" {
            HELP.to_string()
        } else {
            e
        }
    })?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let members = flags.list("members")?.unwrap_or_else(|| (0..scenario.gsp_count()).collect());
    for &m in &members {
        if m >= scenario.gsp_count() {
            return Err(format!("GSP {m} out of range (m = {})", scenario.gsp_count()));
        }
    }
    let inst = scenario
        .instance_for(&members)
        .ok_or_else(|| "VO cannot host the program (constraint (13))".to_string())?;

    let solver_name = flags.get("solver").unwrap_or("exact");
    let solved = match solver_name {
        "exact" => match BranchBound::default().solve_status(&inst) {
            SolveStatus::Optimal(o) => {
                println!(
                    "status: OPTIMAL (proven, {} nodes, incumbent: {})",
                    o.nodes,
                    o.incumbent_source.as_str()
                );
                Some((o.assignment, o.cost))
            }
            SolveStatus::Feasible(o) => {
                println!(
                    "status: FEASIBLE (budget-truncated, {} nodes, incumbent: {})",
                    o.nodes,
                    o.incumbent_source.as_str()
                );
                Some((o.assignment, o.cost))
            }
            SolveStatus::Infeasible { nodes } => {
                println!("status: INFEASIBLE (proven, {nodes} nodes)");
                None
            }
            SolveStatus::Unknown { nodes } => {
                println!("status: UNKNOWN (budget exhausted, {nodes} nodes)");
                None
            }
        },
        "parallel" => ParallelBranchBound::default().solve(&inst).map(|o| {
            println!(
                "status: {} ({} nodes, incumbent: {})",
                if o.optimal { "OPTIMAL" } else { "FEASIBLE" },
                o.nodes,
                o.incumbent_source.as_str()
            );
            (o.assignment, o.cost)
        }),
        name => {
            let kind = match name {
                "greedy" => Heuristic::GreedyCost,
                "min-min" => Heuristic::MinMin,
                "max-min" => Heuristic::MaxMin,
                "sufferage" => Heuristic::Sufferage,
                other => return Err(format!("unknown solver {other:?}")),
            };
            heuristics::run(kind, &inst).map(|a| {
                let c = a.total_cost(&inst);
                println!("status: HEURISTIC-FEASIBLE (no optimality proof)");
                (a, c)
            })
        }
    };

    let Some((assignment, cost)) = solved else {
        println!("no feasible assignment for VO {members:?}");
        return Ok(());
    };
    println!(
        "VO {members:?}: cost {cost:.2} of payment {:.0} → value {:.2}",
        inst.payment(),
        (inst.payment() - cost).max(0.0)
    );
    println!("gsp  tasks  load (s)  deadline {:.0} s", inst.deadline());
    let loads = assignment.loads(&inst);
    let counts = assignment.task_counts(&inst);
    for (i, &g) in members.iter().enumerate() {
        println!("{g:>3}  {:>5}  {:>8.1}", counts[i], loads[i]);
    }
    Ok(())
}
