//! `gridvo stats` — summarize an SWF trace.

use crate::args::Flags;
use gridvo_workload::stats::{size_histogram, trace_stats};
use gridvo_workload::SwfTrace;

const HELP: &str = "\
usage: gridvo stats --swf FILE

Parses a Standard Workload Format trace (e.g. LLNL-Atlas-2006-2.1-cln.swf
from the Parallel Workloads Archive, or `gridvo generate trace` output)
and prints the marginals the paper's workload extraction relies on.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["swf"], &[]).map_err(|e| {
        if e == "help" {
            HELP.to_string()
        } else {
            e
        }
    })?;
    let path = flags.require("swf")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = SwfTrace::parse(&text).map_err(|e| e.to_string())?;
    let Some(s) = trace_stats(&trace) else {
        println!("empty trace");
        return Ok(());
    };
    println!("jobs:            {}", s.jobs);
    println!("completed:       {} ({:.1} %)", s.completed, 100.0 * s.completion_rate);
    println!(
        "large (≥7200 s): {} ({:.1} % of completed)",
        s.large_completed,
        100.0 * s.large_fraction
    );
    println!("sizes:           {}–{} processors", s.min_procs, s.max_procs);
    let q = s.runtime_quantiles;
    println!(
        "runtimes (s):    min {:.0}, p25 {:.0}, median {:.0}, p75 {:.0}, p95 {:.0}, max {:.0}",
        q[0], q[1], q[2], q[3], q[4], q[5]
    );
    println!("size histogram (completed, by power-of-two bucket):");
    for (i, &count) in size_histogram(&trace).iter().enumerate() {
        if count > 0 {
            println!("  [{:>5}, {:>5}): {count}", 1u64 << i, 1u64 << (i + 1));
        }
    }
    Ok(())
}
