//! `gridvo form` — run TVOF/RVOF on a scenario file.

use crate::args::Flags;
use crate::commands::{load_scenario, write_json};
use gridvo_core::mechanism::{FormationConfig, Mechanism};
use gridvo_core::stability;
use rand::SeedableRng;

const HELP: &str = "\
usage: gridvo form --scenario FILE [--mechanism tvof|rvof] [--seed S]
                   [--out outcome.json] [--audit]

Runs Algorithm 1 on the scenario, printing the iteration trace and the
selected VO. --audit additionally verifies Theorems 1 and 2 on the
result (re-solves the IP per member departure).";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["scenario", "mechanism", "seed", "out"], &["audit"])
        .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let seed: u64 = flags.num("seed", 1)?;
    let mech = match flags.get("mechanism").unwrap_or("tvof") {
        "tvof" => Mechanism::tvof(FormationConfig::default()),
        "rvof" => Mechanism::rvof(FormationConfig::default()),
        other => return Err(format!("unknown mechanism {other:?} (tvof|rvof)")),
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let outcome = mech.run(&scenario, &mut rng).map_err(|e| e.to_string())?;

    println!("iter  |VO|  feasible     payoff   avg rep  evicted     nodes  incumbent  pow-it");
    for it in &outcome.iterations {
        println!(
            "{:>4}  {:>4}  {:>8}  {:>9}  {:>8.4}  {:>7}  {:>8}  {:>9}  {:>6}",
            it.iteration,
            it.members.len(),
            it.feasible,
            it.payoff_share.map_or("-".to_string(), |p| format!("{p:.1}")),
            it.avg_reputation,
            it.evicted.map_or("-".to_string(), |g| g.to_string()),
            it.nodes,
            it.incumbent_source.as_deref().unwrap_or("-"),
            it.power_iterations,
        );
    }
    match &outcome.selected {
        Some(vo) => {
            println!(
                "\nselected VO {:?}: payoff/GSP {:.2}, avg reputation {:.4}, cost {:.1} \
                 (optimal: {}), {:.2} s",
                vo.members,
                vo.payoff_share,
                vo.avg_reputation,
                vo.cost,
                vo.optimal,
                outcome.total_seconds
            );
        }
        None => println!("\nno feasible VO — the program cannot be executed"),
    }

    if flags.has("audit") {
        if let Some(vo) = &outcome.selected {
            let verdict =
                stability::audit_individual_stability(&scenario, vo).map_err(|e| e.to_string())?;
            println!("Theorem 1 (individual stability): {verdict:?}");
        }
        if let Some(ok) = stability::audit_pareto_optimality(&outcome) {
            println!("Theorem 2 (Pareto optimal in L):  {ok}");
        }
    }

    if let Some(out) = flags.get("out") {
        write_json(out, &outcome)?;
    }
    Ok(())
}
