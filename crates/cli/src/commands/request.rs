//! `gridvo request` — speak the daemon protocol from the shell.

use crate::args::Flags;
use crate::commands::write_json;
use gridvo_core::FaultPlan;
use gridvo_service::protocol::{MechanismKind, Response};
use gridvo_service::ServiceClient;

const HELP: &str = "\
usage: gridvo request <op> --addr HOST:PORT [op flags]

ops:
  form          --seed S [--app NAME] [--mechanism tvof|rvof]
                [--deadline-ms D] [--out f.json]    (--app contends on
                the shared market: forms over the uncommitted sub-pool
                and leases the winning coalition)
  form-batch    --seeds S1,S2,.. [--mechanism tvof|rvof] [--deadline-ms D]
                [--out f.json]    (one snapshot, one cache pass, streamed
                per-seed responses; --out captures the whole stream)
  execute       --seed S [--plan plan.json] [--mechanism tvof|rvof]
                [--deadline-ms D] [--out f.json]
  release-lease --lease L [--abandon]
  leases        [--out f.json]
  metrics       [--out f.json]
  registry      [--json] [--out f.json]
  report-trust  --from I --to J --value V
  report-receipt --gsp G --round R --reward W --witnesses i,j,..
                [--success]
  add-gsp       --speed S --cost c1,c2,.. --time t1,t2,..
  remove-gsp    --id I
  ping          [--sleep-ms N]

Sends one request to a running `gridvo serve` daemon and prints the
response. Busy / throttled / pool-exhausted / deadline-exceeded
responses exit non-zero so shell loops can back off and retry.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let Some((op, rest)) = argv.split_first() else {
        return Err(HELP.to_string());
    };
    let flags = Flags::parse(
        rest,
        &[
            "addr",
            "seed",
            "seeds",
            "mechanism",
            "deadline-ms",
            "out",
            "plan",
            "from",
            "to",
            "value",
            "speed",
            "cost",
            "time",
            "id",
            "sleep-ms",
            "gsp",
            "round",
            "reward",
            "witnesses",
            "app",
            "lease",
        ],
        &["json", "success", "abandon"],
    )
    .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;
    let addr = flags.require("addr")?;
    let mut client =
        ServiceClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    match op.as_str() {
        "form" => form(&mut client, &flags),
        "form-batch" => form_batch(&mut client, &flags),
        "execute" => execute(&mut client, &flags),
        "release-lease" => {
            let lease: u64 = flags.num("lease", u64::MAX)?;
            let abandon = flags.has("abandon");
            let epoch = client.release_lease(lease, abandon).map_err(|e| e.to_string())?;
            let how = if abandon { "abandoned" } else { "completed" };
            println!("lease {lease} {how}; registry epoch now {epoch}");
            Ok(())
        }
        "leases" => {
            let (leases, free, epoch) = client.leases().map_err(|e| e.to_string())?;
            println!("{} live lease(s), {} free GSP(s), epoch {}", leases.len(), free.len(), epoch);
            for lease in &leases {
                println!(
                    "  lease {} (app {:?}): GSPs {:?}, acquired at epoch {}",
                    lease.id, lease.app, lease.members, lease.acquired_epoch,
                );
            }
            maybe_out(&flags, &leases)
        }
        "metrics" => {
            let snapshot = client.metrics().map_err(|e| e.to_string())?;
            println!(
                "requests {} (form {}, execute {}), busy {}, deadline-dropped {}, \
                 anytime {}, errors {}",
                snapshot.requests_total,
                snapshot.form_requests,
                snapshot.execute_requests,
                snapshot.busy_rejections,
                snapshot.deadline_rejections,
                snapshot.anytime_served,
                snapshot.request_errors,
            );
            println!(
                "cache: {} hits / {} misses (rate {:.2}), {} entries; queue depth {}",
                snapshot.cache_hits,
                snapshot.cache_misses,
                snapshot.cache_hit_rate,
                snapshot.cache_entries,
                snapshot.queue_depth,
            );
            println!(
                "latency: queue wait mean {:.3} ms (max {:.3}), service mean {:.3} ms (max {:.3})",
                snapshot.queue_wait_ms.mean_ms(),
                snapshot.queue_wait_ms.max_ms,
                snapshot.service_ms.mean_ms(),
                snapshot.service_ms.max_ms,
            );
            println!(
                "market: {} GSP(s) committed across {} lease(s); acquired {}, released {}, \
                 expired {}; shed {} pool-exhausted, {} throttled",
                snapshot.committed_gsps,
                snapshot.live_leases,
                snapshot.leases_acquired,
                snapshot.leases_released,
                snapshot.leases_expired,
                snapshot.pool_exhausted_rejections,
                snapshot.throttled_rejections,
            );
            for d in &snapshot.app_queue_depths {
                println!("  app {:?}: {} outstanding", d.app, d.depth);
            }
            maybe_out(&flags, &snapshot)
        }
        "registry" => {
            let (snapshot, served_epoch) =
                client.registry_with_epoch().map_err(|e| e.to_string())?;
            // The epoch of the immutable snapshot that served the
            // dump, reported alongside it so scripts can detect
            // staleness without digging into the dump itself.
            let snapshot_epoch = served_epoch.unwrap_or(snapshot.epoch);
            if flags.has("json") {
                // Snapshot JSON plus its epoch on stdout, for scripts
                // (`--out` still writes the same document to a file).
                let doc = RegistryDump { snapshot_epoch, snapshot };
                let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
                println!("{json}");
                maybe_out(&flags, &doc)
            } else {
                println!(
                    "epoch {} (snapshot epoch {}): {} GSPs, {} tasks, {} logged events, last \
                     refresh {} power iteration(s)",
                    snapshot.epoch,
                    snapshot_epoch,
                    snapshot.gsps,
                    snapshot.tasks,
                    snapshot.events,
                    snapshot.power_iterations,
                );
                maybe_out(&flags, &snapshot)
            }
        }
        "report-trust" => {
            let from: usize = flags.num("from", usize::MAX)?;
            let to: usize = flags.num("to", usize::MAX)?;
            let value: f64 = flags.num("value", f64::NAN)?;
            let epoch = client.report_trust(from, to, value).map_err(|e| e.to_string())?;
            println!("trust {from} -> {to} = {value}; registry epoch now {epoch}");
            Ok(())
        }
        "report-receipt" => {
            let gsp: usize = flags.num("gsp", usize::MAX)?;
            let round: usize = flags.num("round", 0)?;
            let reward: f64 = flags.num("reward", 0.0)?;
            let witnesses = flags
                .list("witnesses")?
                .ok_or_else(|| "report-receipt needs --witnesses i,j,..".to_string())?;
            let success = flags.has("success");
            let receipt =
                gridvo_core::ExecutionReceipt::new(round, gsp, success, reward, witnesses);
            let epoch = client.report_receipt(receipt).map_err(|e| e.to_string())?;
            let verdict = if success { "success" } else { "failure" };
            println!(
                "receipt for GSP {gsp} ({verdict}, reward {reward}); registry epoch now {epoch}"
            );
            Ok(())
        }
        "add-gsp" => {
            let speed: f64 = flags.num("speed", 0.0)?;
            let cost = float_list(&flags, "cost")?;
            let time = float_list(&flags, "time")?;
            let (id, epoch) = client.add_gsp(speed, cost, time).map_err(|e| e.to_string())?;
            println!("joined as GSP {id}; registry epoch now {epoch}");
            Ok(())
        }
        "remove-gsp" => {
            let id: usize = flags.num("id", usize::MAX)?;
            let epoch = client.remove_gsp(id).map_err(|e| e.to_string())?;
            println!("GSP {id} removed; registry epoch now {epoch}");
            Ok(())
        }
        "ping" => {
            let sleep_ms: u64 = flags.num("sleep-ms", 0)?;
            match client.ping(sleep_ms).map_err(|e| e.to_string())? {
                Response::Pong => {
                    println!("pong");
                    Ok(())
                }
                other => shed(other),
            }
        }
        other => Err(format!("unknown request op {other:?}\n{HELP}")),
    }
}

fn mechanism(flags: &Flags) -> Result<MechanismKind, String> {
    let name = flags.get("mechanism").unwrap_or("tvof");
    MechanismKind::parse(name).ok_or_else(|| format!("unknown mechanism {name:?} (tvof|rvof)"))
}

fn deadline(flags: &Flags) -> Result<Option<u64>, String> {
    Ok(match flags.num("deadline-ms", 0u64)? {
        0 => None,
        ms => Some(ms),
    })
}

fn form(client: &mut ServiceClient, flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags.num("seed", 1)?;
    let response = match flags.get("app") {
        Some(app) => client.form_in_app(app, seed, mechanism(flags)?, deadline(flags)?),
        None => client.form(seed, mechanism(flags)?, deadline(flags)?),
    }
    .map_err(|e| e.to_string())?;
    match response {
        Response::Form { outcome, truncated, gap, lease, lease_epoch, .. } => {
            match &outcome.selected {
                Some(vo) => println!(
                    "selected VO {:?}: payoff/GSP {:.2}, avg reputation {:.4}, cost {:.1} \
                     ({} iteration(s))",
                    vo.members,
                    vo.payoff_share,
                    vo.avg_reputation,
                    vo.cost,
                    outcome.iterations.len(),
                ),
                None => println!("no feasible VO"),
            }
            if truncated == Some(true) {
                println!(
                    "anytime result: a budget truncated the solve (gap {})",
                    gap.map_or("unknown".to_string(), |g| format!("{:.2}%", g * 100.0)),
                );
            }
            if let Some(lease) = lease {
                println!(
                    "coalition committed as lease {} (epoch {}); release with \
                     `gridvo request release-lease --lease {}`",
                    lease,
                    lease_epoch.map_or("?".to_string(), |e| e.to_string()),
                    lease,
                );
            }
            maybe_out(flags, &outcome)
        }
        other => shed(other),
    }
}

/// The `registry --json` document: the snapshot plus the epoch of
/// the immutable snapshot that served it.
#[derive(serde::Serialize)]
struct RegistryDump {
    snapshot_epoch: u64,
    snapshot: gridvo_service::RegistrySnapshot,
}

fn form_batch(client: &mut ServiceClient, flags: &Flags) -> Result<(), String> {
    let seeds: Vec<u64> = flags
        .require("seeds")?
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("invalid seed in --seeds: {p:?}")))
        .collect::<Result<Vec<u64>, String>>()?;
    let responses = client
        .form_batch(&seeds, mechanism(flags)?, deadline(flags)?)
        .map_err(|e| e.to_string())?;
    for (i, response) in responses.iter().enumerate() {
        match response {
            Response::Form { outcome, .. } => match &outcome.selected {
                Some(vo) => println!(
                    "seed {}: VO {:?}, payoff/GSP {:.2}, avg reputation {:.4} ({} iteration(s))",
                    seeds[i],
                    vo.members,
                    vo.payoff_share,
                    vo.avg_reputation,
                    outcome.iterations.len(),
                ),
                None => println!("seed {}: no feasible VO", seeds[i]),
            },
            Response::BatchEnd { epoch, served } => {
                println!("batch done: {served} seed(s) formed against snapshot epoch {epoch}");
            }
            Response::Error { message } => println!("seed {}: error: {message}", seeds[i]),
            other => return shed(other.clone()),
        }
    }
    maybe_out(flags, &responses)
}

fn execute(client: &mut ServiceClient, flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags.num("seed", 1)?;
    let plan = match flags.get("plan") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read plan {path}: {e}"))?;
            serde_json::from_str::<FaultPlan>(&text)
                .map_err(|e| format!("invalid fault plan JSON in {path}: {e}"))?
        }
        None => FaultPlan::empty(),
    };
    match client
        .execute(seed, mechanism(flags)?, plan, deadline(flags)?)
        .map_err(|e| e.to_string())?
    {
        Response::Execute { outcome, report } => {
            match &report {
                Some(r) => println!(
                    "executed: {} -> {} member(s), cost {:.1} -> {:.1}, {} recover(ies), \
                     completed: {}",
                    r.initial_members.len(),
                    r.final_members.len(),
                    r.initial_cost,
                    r.final_cost,
                    r.recoveries.len(),
                    r.completed(),
                ),
                None => println!("no feasible VO — nothing executed"),
            }
            if let Some(out) = flags.get("out") {
                write_json(out, &Response::Execute { outcome, report })?;
            }
            Ok(())
        }
        other => shed(other),
    }
}

fn shed(response: Response) -> Result<(), String> {
    match response {
        Response::Busy => Err("server busy (queue full) — retry later".to_string()),
        Response::DeadlineExceeded => Err("request dropped: deadline exceeded".to_string()),
        Response::Throttled => Err("request throttled (rate limit) — back off".to_string()),
        Response::PoolExhausted { free } => {
            Err(format!("pool exhausted ({free} free GSP(s)) — release a lease or retry later"))
        }
        Response::Error { message } => Err(format!("server error: {message}")),
        other => Err(format!("unexpected response kind {:?}", other.kind())),
    }
}

fn maybe_out<T: serde::Serialize>(flags: &Flags, value: &T) -> Result<(), String> {
    match flags.get("out") {
        Some(path) => write_json(path, value),
        None => Ok(()),
    }
}

fn float_list(flags: &Flags, name: &str) -> Result<Vec<f64>, String> {
    flags
        .require(name)?
        .split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("invalid number in --{name}: {p:?}")))
        .collect()
}
