//! `gridvo dynamic` — multi-round dynamic formation.

use crate::args::Flags;
use gridvo_core::mechanism::{FormationConfig, Mechanism};
use gridvo_sim::dynamic::{mean_reliability, simulate, success_rate, DynamicConfig};
use gridvo_sim::TableI;
use rand::{Rng, SeedableRng};

const HELP: &str = "\
usage: gridvo dynamic [--rounds R] [--gsps M] [--tasks N] [--seed S]
                      [--mechanism tvof|rvof] [--flaky-every K]

Simulates R program arrivals with hidden per-GSP reliabilities (every
K-th GSP is flaky); trust accumulates from delivery outcomes. Prints
the per-round VO, whether the program was delivered, and the
reliability-learning summary.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags =
        Flags::parse(argv, &["rounds", "gsps", "tasks", "seed", "mechanism", "flaky-every"], &[])
            .map_err(|e| if e == "help" { HELP.to_string() } else { e })?;
    let rounds: usize = flags.num("rounds", 12)?;
    let gsps: usize = flags.num("gsps", 16)?;
    let tasks: usize = flags.num("tasks", 64)?;
    let seed: u64 = flags.num("seed", 1)?;
    let flaky_every: usize = flags.num("flaky-every", 3)?;
    let mech = match flags.get("mechanism").unwrap_or("tvof") {
        "tvof" => Mechanism::tvof(FormationConfig::default()),
        "rvof" => Mechanism::rvof(FormationConfig::default()),
        other => return Err(format!("unknown mechanism {other:?} (tvof|rvof)")),
    };
    if tasks < gsps {
        return Err(format!("--tasks {tasks} must be ≥ --gsps {gsps}"));
    }

    let table = TableI { gsps, task_sizes: vec![tasks], trace_jobs: 5_000, ..TableI::default() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let reliabilities: Vec<f64> = (0..gsps)
        .map(|g| {
            if flaky_every > 0 && g % flaky_every == flaky_every - 1 {
                rng.gen_range(0.2..0.5)
            } else {
                rng.gen_range(0.9..1.0)
            }
        })
        .collect();
    print!("hidden reliabilities:");
    for r in &reliabilities {
        print!(" {r:.2}");
    }
    println!();

    let cfg = DynamicConfig::new(table, rounds, tasks, reliabilities);
    let records = simulate(&cfg, mech, &mut rng).map_err(|e| e.to_string())?;

    println!("round  |VO|  member-reliability  delivered  failed");
    for r in &records {
        println!(
            "{:>5}  {:>4}  {:>18.3}  {:>9}  {:?}",
            r.round,
            r.members.len(),
            r.mean_reliability,
            r.delivered,
            r.failed_members
        );
    }
    let half = rounds / 2;
    println!(
        "\nmean member reliability: first half {:.3}, second half {:.3} (drift {:+.3})",
        mean_reliability(&records[..half]),
        mean_reliability(&records[half..]),
        mean_reliability(&records[half..]) - mean_reliability(&records[..half]),
    );
    println!("program success rate:    {:.2}", success_rate(&records));
    Ok(())
}
