//! Subcommand implementations.

pub mod dynamic;
pub mod execute;
pub mod form;
pub mod game;
pub mod generate;
pub mod request;
pub mod serve;
pub mod solve;
pub mod stats;

use gridvo_core::FormationScenario;

/// Load a scenario JSON file.
pub(crate) fn load_scenario(path: &str) -> Result<FormationScenario, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read scenario {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("invalid scenario JSON in {path}: {e}"))
}

/// Write pretty JSON to a file, echoing the path.
pub(crate) fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}
