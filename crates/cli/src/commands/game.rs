//! `gridvo game` — coalitional-game analysis of a scenario.

use crate::args::Flags;
use crate::commands::load_scenario;
use gridvo_core::game_adapter::vo_game;
use gridvo_core::merge_split::merge_split;
use gridvo_game::core_solution::{is_in_core, least_core};
use gridvo_game::division::{equal_split, shapley_exact};
use gridvo_game::CharacteristicFn;
use gridvo_solver::branch_bound::BranchBound;

const HELP: &str = "\
usage: gridvo game --scenario FILE

Treats the scenario as the coalitional game v(C) = max(0, P − C*(T,C))
and reports: v(grand), the paper's equal split, the exact Shapley
value, core membership of the equal split, the least-core ε*, and the
merge-and-split partition (the authors' earlier mechanism). Exponential
in the GSP count — use federations of ≤ 12 GSPs.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv, &["scenario"], &[]).map_err(|e| {
        if e == "help" {
            HELP.to_string()
        } else {
            e
        }
    })?;
    let scenario = load_scenario(flags.require("scenario")?)?;
    let m = scenario.gsp_count();
    if m > 12 {
        return Err(format!("game analysis is exponential; {m} GSPs exceeds the 12-GSP cap"));
    }
    let game = vo_game(&scenario, BranchBound::default());
    let grand = game.grand();
    let vg = game.value(grand);
    println!("v(grand) = {vg:.2} over {m} GSPs ({} IP solves cached)", game.cache_size());

    let shares = equal_split(&game, grand);
    println!("equal split (eq. 18): {:.2} per GSP", shares.first().copied().unwrap_or(0.0));

    let phi = shapley_exact(&game).map_err(|e| e.to_string())?;
    print!("Shapley value:       ");
    for p in &phi {
        print!(" {p:.2}");
    }
    println!();

    let eq_vec = vec![shares.first().copied().unwrap_or(0.0); m];
    let eq_core = is_in_core(&game, &eq_vec, 1e-6).map_err(|e| e.to_string())?;
    println!("equal split in core:  {eq_core}");

    let lc = least_core(&game, 1e-6).map_err(|e| e.to_string())?;
    println!(
        "least core:           ε* = {:.4} → core {} ({} rounds)",
        lc.epsilon,
        if lc.core_nonempty(1e-6) { "NON-EMPTY" } else { "EMPTY" },
        lc.rounds
    );

    let ms = merge_split(&game, 100_000);
    print!(
        "merge-and-split:      {} merges, {} splits{} → partition",
        ms.merges,
        ms.splits,
        if ms.converged { "" } else { " (ops cap hit)" }
    );
    for c in &ms.partition {
        print!(" {c}");
    }
    println!();
    if let Some(best) = ms.best_coalition(&game) {
        println!(
            "best merge-split VO:  {best} with share {:.2}",
            game.value(best) / best.len().max(1) as f64
        );
    }
    Ok(())
}
