//! End-to-end market crash test: SIGKILL the durable daemon while
//! concurrent applications are acquiring and releasing leases, then
//! prove recovery restores the **exact** live lease set — an offline
//! [`DurableRegistry::open`] on the same data directory and a
//! respawned daemon must agree lease-for-lease, no GSP may come back
//! double-committed, and pre-crash leases must still release over
//! the wire.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridvo_core::mechanism::FormationConfig;
use gridvo_core::FormationScenario;
use gridvo_service::{DurableRegistry, MechanismKind, PersistConfig, Response, ServiceClient};
use gridvo_sim::config::TableI;
use gridvo_sim::instance_gen::ScenarioGenerator;
use gridvo_store::FsyncPolicy;
use rand::SeedableRng;

const GSPS: usize = 12;
const APPS: usize = 4;
const OPS_PER_APP: usize = 400;

fn gridvo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridvo"))
}

/// The exact scenario `serve --tasks 12 --gsps 12 --seed 7` builds,
/// so the offline recovery oracle opens the same registry the daemon
/// ran.
fn scenario() -> FormationScenario {
    let cfg = TableI { gsps: GSPS, task_sizes: vec![12], ..TableI::small() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    ScenarioGenerator::new(cfg).scenario(12, &mut rng).expect("feasible scenario")
}

fn spawn_daemon(extra: &[&str]) -> (Child, BufReader<ChildStdout>, String, Option<u64>) {
    let mut child = gridvo()
        .args(["serve", "--tasks", "12", "--gsps", "12", "--seed", "7", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon announces its port");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    reader.read_line(&mut line).expect("daemon prints its pool banner");
    let recovered = line
        .trim()
        .strip_prefix("recovered registry at epoch ")
        .map(|n| n.parse().expect("recovery banner carries an integer epoch"));
    (child, reader, addr, recovered)
}

fn shutdown(mut child: Child) {
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait works").is_some() {
            return;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not shut down in time");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridvo-market-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(unix)]
#[test]
fn sigkill_mid_market_storm_recovers_the_exact_lease_set() {
    let scratch = scratch_dir("storm");
    let data_dir = scratch.join("data");
    let durable_flags = [
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--fsync",
        "per-epoch=4",
        "--compact-bytes",
        "10485760",
    ]
    .to_vec();

    // Storm: APPS concurrent applications churning leases (form,
    // hold, release with a mix of complete/abandon) until the kill
    // lands mid-stream.
    let (mut child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    assert_eq!(recovered, None, "fresh data dir must bootstrap, not recover");
    let last_acked = Arc::new(AtomicU64::new(0));
    let storm: Vec<_> = (0..APPS)
        .map(|w| {
            let addr = addr.clone();
            let last_acked = Arc::clone(&last_acked);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(&addr).expect("connect");
                let app = format!("app-{w}");
                let mut held: Vec<u64> = Vec::new();
                for i in 0..OPS_PER_APP {
                    let seed = (w * 10_000 + i) as u64;
                    match client.form_in_app(&app, seed, MechanismKind::Tvof, None) {
                        Ok(Response::Form { lease: Some(l), lease_epoch: Some(e), .. }) => {
                            last_acked.fetch_max(e, Ordering::SeqCst);
                            held.push(l);
                        }
                        Ok(_) => {}       // shed (pool exhausted / busy): keep storming
                        Err(_) => return, // the kill landed
                    }
                    if held.len() > 1 {
                        let lease = held.remove(0);
                        match client.release_lease(lease, i % 2 == 0) {
                            Ok(epoch) => {
                                last_acked.fetch_max(epoch, Ordering::SeqCst);
                            }
                            Err(_) => return, // the kill landed
                        }
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(killed, "kill -9 failed");
    for t in storm {
        t.join().expect("storm thread exits");
    }
    child.wait().expect("killed child reaped");
    let last_acked = last_acked.load(Ordering::SeqCst);
    assert!(last_acked > 0, "the storm must have leased before the kill");

    // Offline oracle: open the same data directory in-process (no
    // appends happen on open) and read off the expected lease table.
    let persist = PersistConfig {
        data_dir: data_dir.clone(),
        fsync: FsyncPolicy::Off,
        compact_bytes: u64::MAX,
    };
    let s = scenario();
    let (oracle, oracle_epoch) =
        DurableRegistry::open(&s, FormationConfig::default().reputation, Some(&persist))
            .expect("offline recovery");
    let oracle_epoch = oracle_epoch.expect("non-empty journal recovers");
    assert!(
        oracle_epoch >= last_acked,
        "recovery at epoch {oracle_epoch} lost acknowledged mutations (last ack {last_acked})"
    );
    let expected = serde_json::to_string(oracle.registry().leases()).unwrap();
    let expected_free = oracle.registry().free_members();
    let live: Vec<(u64, Vec<usize>)> =
        oracle.registry().leases().iter().map(|l| (l.id, l.members.clone())).collect();
    drop(oracle);

    // No GSP may come back committed to two live leases.
    for (i, (id_a, members_a)) in live.iter().enumerate() {
        for (id_b, members_b) in &live[i + 1..] {
            assert!(
                members_a.iter().all(|g| !members_b.contains(g)),
                "recovered leases {id_a} and {id_b} share a GSP"
            );
        }
    }

    // Respawn on the same journal: the daemon must serve exactly the
    // oracle's lease set, and a pre-crash lease must still release.
    let (child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    assert_eq!(recovered, Some(oracle_epoch), "daemon and oracle recover the same epoch");
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let (leases, free, epoch) = client.leases().expect("lease dump");
    assert_eq!(epoch, oracle_epoch);
    assert_eq!(
        serde_json::to_string(&leases).unwrap(),
        expected,
        "recovered daemon serves a different lease set than the journal replay"
    );
    assert_eq!(free, expected_free);

    if let Some((id, members)) = live.first() {
        let release_epoch = client.release_lease(*id, false).expect("pre-crash lease releases");
        assert!(release_epoch > oracle_epoch);
        let (_, free, _) = client.leases().expect("lease dump");
        assert!(
            members.iter().all(|g| free.contains(g)),
            "released members must rejoin the free pool"
        );
    }

    // New leases continue the id sequence past every pre-crash id.
    match client.form_in_app("post-crash", 99, MechanismKind::Tvof, None).expect("served") {
        Response::Form { lease: Some(l), .. } => {
            assert!(
                live.iter().all(|(id, _)| l > *id),
                "lease ids must not be recycled across the crash"
            );
        }
        other => panic!("post-crash pool must serve a lease, got {other:?}"),
    }
    drop(client);
    shutdown(child);
    let _ = std::fs::remove_dir_all(&scratch);
}
