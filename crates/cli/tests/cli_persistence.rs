//! Crash-injection e2e: SIGKILL the durable daemon mid-mutation-storm
//! and truncate its journal at arbitrary byte offsets; every recovery
//! must come back byte-identical to an in-memory daemon fed the same
//! deterministic mutation prefix.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridvo_service::ServiceClient;

fn gridvo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridvo"))
}

/// Spawn the daemon on the fixed test scenario and block until it
/// prints its bound address; also returns the `recovered registry at
/// epoch N` value when the banner carries one.
fn spawn_daemon(extra: &[&str]) -> (Child, BufReader<ChildStdout>, String, Option<u64>) {
    let mut child = gridvo()
        .args(["serve", "--tasks", "12", "--gsps", "4", "--seed", "7", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon announces its port");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    reader.read_line(&mut line).expect("daemon prints its pool banner");
    let recovered = line
        .trim()
        .strip_prefix("recovered registry at epoch ")
        .map(|n| n.parse().expect("recovery banner carries an integer epoch"));
    (child, reader, addr, recovered)
}

fn shutdown(mut child: Child) {
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait works").is_some() {
            return;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not shut down in time");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Deterministic mutation stream: mutation `i` is a pure function of
/// `i`, so "the first N mutations" is replayable on any daemon. The
/// pool starts at 4 GSPs; each 5-block adds one (making 5) then
/// removes id 4 (back to 4), so every mutation is valid regardless of
/// where a crash cuts the stream.
fn mutate(client: &mut ServiceClient, i: u64) -> Result<u64, gridvo_service::ClientError> {
    match i % 5 {
        1 => client
            .add_gsp(80.0 + i as f64, vec![1.5 + 0.01 * i as f64; 12], vec![0.6; 12])
            .map(|(_, epoch)| epoch),
        3 => client.remove_gsp(4),
        _ => {
            let value = 0.2 + 0.5 * ((i % 7) as f64 / 7.0);
            client.report_trust((i % 4) as usize, ((i + 1) % 4) as usize, value)
        }
    }
}

fn registry_json(addr: &str) -> String {
    run_ok(gridvo().args(["request", "registry", "--addr", addr, "--json"]))
}

fn form_json(addr: &str, dir: &Path) -> String {
    let out = dir.join("form.json");
    run_ok(gridvo().args([
        "request",
        "form",
        "--addr",
        addr,
        "--seed",
        "9",
        "--out",
        out.to_str().unwrap(),
    ]));
    std::fs::read_to_string(&out).expect("form --out written")
}

/// Feed mutations `0..n` to a fresh in-memory daemon and capture its
/// registry + formation bytes: the recovery oracle.
fn uninterrupted_bytes(n: u64, scratch: &Path) -> (String, String) {
    let (child, _reader, addr, recovered) = spawn_daemon(&[]);
    assert_eq!(recovered, None, "in-memory daemon must not print a recovery banner");
    let mut client = ServiceClient::connect(&addr).expect("connect");
    for i in 0..n {
        mutate(&mut client, i).expect("mutation valid by construction");
    }
    let bytes = (registry_json(&addr), form_json(&addr, scratch));
    drop(client);
    shutdown(child);
    bytes
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridvo-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(unix)]
#[test]
fn sigkill_mid_storm_recovers_every_acknowledged_mutation() {
    let scratch = scratch_dir("sigkill");
    let data_dir = scratch.join("data");
    let durable_flags =
        ["--data-dir", data_dir.to_str().unwrap(), "--fsync", "per-epoch=4"].to_vec();

    // Hammer the durable daemon from a thread, then SIGKILL it
    // mid-stream.
    let (mut child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    assert_eq!(recovered, None, "fresh data dir must bootstrap, not recover");
    let last_acked = Arc::new(AtomicU64::new(0));
    let hammer = {
        let addr = addr.clone();
        let last_acked = Arc::clone(&last_acked);
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect(&addr).expect("connect");
            for i in 0..400 {
                match mutate(&mut client, i) {
                    Ok(epoch) => last_acked.store(epoch, Ordering::SeqCst),
                    Err(_) => break, // the kill landed
                }
            }
        })
    };
    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(killed, "kill -9 failed");
    hammer.join().expect("hammer thread exits");
    child.wait().expect("killed child reaped");
    let last_acked = last_acked.load(Ordering::SeqCst);
    assert!(last_acked > 0, "the storm must have landed some mutations before the kill");

    // Recover: every acknowledged mutation must be there (the journal
    // append happens before the ack), possibly plus in-flight ones
    // whose ack the kill swallowed.
    let (child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    let epoch = recovered.expect("non-empty data dir must recover");
    assert!(
        epoch >= last_acked,
        "recovered epoch {epoch} lost acknowledged mutations (last ack {last_acked})"
    );
    let got_registry = registry_json(&addr);
    let got_form = form_json(&addr, &scratch);
    assert!(
        got_registry.contains(&format!("\"epoch\": {epoch}")),
        "served registry JSON disagrees with the recovery banner: {got_registry}"
    );
    shutdown(child);

    // Differential: an in-memory daemon fed the same first `epoch`
    // mutations serves byte-identical registry and formation JSON.
    let (want_registry, want_form) = uninterrupted_bytes(epoch, &scratch);
    assert_eq!(got_registry, want_registry, "recovered registry diverged from uninterrupted run");
    assert_eq!(got_form, want_form, "recovered formation diverged from uninterrupted run");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn truncated_journal_tails_recover_valid_prefixes_end_to_end() {
    let scratch = scratch_dir("truncate");
    let data_dir = scratch.join("data");
    let durable_flags = ["--data-dir", data_dir.to_str().unwrap(), "--fsync", "off"].to_vec();

    // Record a clean run of 25 mutations.
    let (child, _reader, addr, _) = spawn_daemon(&durable_flags);
    let mut client = ServiceClient::connect(&addr).expect("connect");
    for i in 0..25 {
        mutate(&mut client, i).expect("mutation valid by construction");
    }
    drop(client);
    shutdown(child);

    let journal = data_dir.join("journal.log");
    let pristine = std::fs::read(&journal).unwrap();
    assert!(!pristine.is_empty(), "the run must have journaled something");

    // Cut the tail at decreasing offsets — including mid-record — and
    // re-differential each recovery. Recovery itself truncates the
    // torn line, so later cuts are taken from the pristine bytes.
    let mut last_epoch = u64::MAX;
    for cut in [pristine.len() - 1, pristine.len() / 2, pristine.len() / 5, 0] {
        std::fs::write(&journal, &pristine[..cut]).unwrap();
        let (child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
        let epoch = recovered.expect("bootstrap snapshot survives any truncation");
        assert!(epoch < last_epoch, "shorter cut {cut} must recover strictly fewer events");
        last_epoch = epoch;
        let got_registry = registry_json(&addr);
        let got_form = form_json(&addr, &scratch);
        shutdown(child);

        let (want_registry, want_form) = uninterrupted_bytes(epoch, &scratch);
        assert_eq!(
            got_registry, want_registry,
            "cut at {cut} recovered a registry that diverges from the {epoch}-mutation prefix"
        );
        assert_eq!(got_form, want_form, "cut at {cut} diverged the served formation");
    }
    assert_eq!(last_epoch, 0, "the zero-byte cut recovers the bare bootstrap");
    let _ = std::fs::remove_dir_all(&scratch);
}
