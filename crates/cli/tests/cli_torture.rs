//! End-to-end crash torture: SIGKILL the durable daemon while
//! *multiple concurrent writers* are hammering it, then prove the
//! journal is a serializable history — its events replay onto a fresh
//! in-memory daemon, in epoch order, to byte-identical served state.
//!
//! This is the subprocess-level counterpart of
//! `crates/service/tests/torture.rs`: there the acked-op order is
//! captured in-process; here the **journal itself** is the recorded
//! order, and the test proves (a) recovery reaches at least the last
//! epoch any writer saw acked, and (b) the journal's interleaving is
//! real — replaying it through the public protocol reproduces the
//! recovered daemon's registry and formation bytes exactly.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridvo_core::ExecutionReceipt;
use gridvo_service::{RegistryEvent, ServiceClient};
use gridvo_store::JOURNAL_FILE;

const GSPS: usize = 4;
const WRITERS: usize = 4;
const OPS_PER_WRITER: usize = 300;

fn gridvo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridvo"))
}

/// Spawn the daemon on the fixed test scenario and block until it
/// prints its bound address; also returns the `recovered registry at
/// epoch N` value when the banner carries one.
fn spawn_daemon(extra: &[&str]) -> (Child, BufReader<ChildStdout>, String, Option<u64>) {
    let mut child = gridvo()
        .args(["serve", "--tasks", "12", "--gsps", "4", "--seed", "7", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon announces its port");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    reader.read_line(&mut line).expect("daemon prints its pool banner");
    let recovered = line
        .trim()
        .strip_prefix("recovered registry at epoch ")
        .map(|n| n.parse().expect("recovery banner carries an integer epoch"));
    (child, reader, addr, recovered)
}

fn shutdown(mut child: Child) {
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait works").is_some() {
            return;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not shut down in time");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn registry_json(addr: &str) -> String {
    run_ok(gridvo().args(["request", "registry", "--addr", addr, "--json"]))
}

fn form_json(addr: &str, dir: &Path) -> String {
    let out = dir.join("form.json");
    run_ok(gridvo().args([
        "request",
        "form",
        "--addr",
        addr,
        "--seed",
        "9",
        "--out",
        out.to_str().unwrap(),
    ]));
    std::fs::read_to_string(&out).expect("form --out written")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridvo-torture-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writer `w`'s `i`-th mutation: deterministic per thread, valid by
/// construction, and membership-stable (trust / receipts only) so
/// every journal event maps back onto a `gridvo request` call.
fn storm_op(
    client: &mut ServiceClient,
    w: usize,
    i: usize,
) -> Result<u64, gridvo_service::ClientError> {
    let a = (w + 3 * i) % GSPS;
    let b = (a + 1 + (i % (GSPS - 1))) % GSPS;
    match i % 3 {
        0 => client.report_trust(a, b, 0.1 + 0.1 * ((w + i) % 8) as f64),
        1 => client.report_receipt(ExecutionReceipt::new(w * 1000 + i, a, true, 6.0, vec![b])),
        _ => client.report_receipt(ExecutionReceipt::new(w * 1000 + i, a, false, 9.0, vec![b])),
    }
}

#[cfg(unix)]
#[test]
fn sigkill_mid_concurrent_storm_replays_the_journal_byte_for_byte() {
    let scratch = scratch_dir("storm");
    let data_dir = scratch.join("data");
    let durable_flags = [
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--fsync",
        "per-epoch=4",
        "--compact-bytes",
        "10485760", // never compact: the journal must keep the full interleaving
    ]
    .to_vec();

    // Storm: WRITERS concurrent connections mutating at full speed,
    // then a SIGKILL that lands mid-stream.
    let (mut child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    assert_eq!(recovered, None, "fresh data dir must bootstrap, not recover");
    let last_acked = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            let last_acked = Arc::clone(&last_acked);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(&addr).expect("connect");
                for i in 0..OPS_PER_WRITER {
                    match storm_op(&mut client, w, i) {
                        Ok(epoch) => {
                            last_acked.fetch_max(epoch, Ordering::SeqCst);
                        }
                        Err(_) => break, // the kill landed
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(250));
    let killed = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(killed, "kill -9 failed");
    for writer in writers {
        writer.join().expect("writer thread exits");
    }
    child.wait().expect("killed child reaped");
    let last_acked = last_acked.load(Ordering::SeqCst);
    assert!(last_acked > 0, "the storm must have landed some mutations before the kill");

    // Recover: the journal append happens before the ack, so no
    // acknowledged epoch may be missing (in-flight ones whose ack the
    // kill swallowed may legitimately be present on top).
    let (child, _reader, addr, recovered) = spawn_daemon(&durable_flags);
    let epoch = recovered.expect("non-empty data dir must recover");
    assert!(
        epoch >= last_acked,
        "recovered epoch {epoch} lost acknowledged mutations (last ack {last_acked})"
    );
    let got_registry = registry_json(&addr);
    let got_form = form_json(&addr, &scratch);
    shutdown(child);

    // The journal is the recorded interleaving: exactly `epoch` valid
    // lines, epochs 1..=epoch in order (recovery truncated any torn
    // tail when the daemon above reopened the store).
    let journal = std::fs::read_to_string(data_dir.join(JOURNAL_FILE)).unwrap();
    let events: Vec<RegistryEvent> = journal
        .lines()
        .map(|line| serde_json::from_str(line).expect("journal lines are registry events"))
        .collect();
    assert_eq!(events.len() as u64, epoch, "journal length disagrees with the recovery banner");
    for (i, event) in events.iter().enumerate() {
        assert_eq!(event.epoch, i as u64 + 1, "journal epochs must be gapless and ordered");
    }

    // Replay the interleaving through the public protocol onto a
    // fresh in-memory daemon: the served bytes must come back exactly.
    let (replay_daemon, _reader, replay_addr, recovered) = spawn_daemon(&[]);
    assert_eq!(recovered, None);
    let mut client = ServiceClient::connect(&replay_addr).expect("connect");
    for event in &events {
        let acked = match event.op.as_str() {
            "report_trust" => client
                .report_trust(
                    event.gsp.expect("trust events carry the reporter"),
                    event.to.expect("trust events carry the subject"),
                    event.value.expect("trust events carry the value"),
                )
                .expect("replayed trust report is valid"),
            "report_receipt" => client
                .report_receipt(event.receipt.clone().expect("receipt events carry the receipt"))
                .expect("replayed receipt is valid"),
            other => panic!("the storm only writes trust/receipts, journal has {other:?}"),
        };
        assert_eq!(acked, event.epoch, "replay must retrace the journal's epoch order");
    }
    let want_registry = registry_json(&replay_addr);
    let want_form = form_json(&replay_addr, &scratch);
    drop(client);
    shutdown(replay_daemon);

    assert_eq!(
        got_registry, want_registry,
        "recovered registry diverged from the journal's serial replay"
    );
    assert_eq!(got_form, want_form, "recovered formation diverged from the journal's replay");
    let _ = std::fs::remove_dir_all(&scratch);
}
