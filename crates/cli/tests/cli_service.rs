//! End-to-end test of the daemon: spawn `gridvo serve` on an
//! ephemeral loopback port, drive it with `gridvo request`
//! subprocesses, and assert clean shutdown on both stdin close and
//! SIGTERM.

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn gridvo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridvo"))
}

/// Spawn the daemon and block until it prints its bound address.
fn spawn_daemon(extra: &[&str]) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = gridvo()
        .args(["serve", "--tasks", "12", "--gsps", "4", "--seed", "7", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon announces its port");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, reader, addr)
}

/// Wait for the child to exit, panicking after `secs` seconds.
fn wait_with_timeout(child: &mut Child, secs: u64) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait works") {
            return status;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not exit within {secs} s");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn serve_and_request_roundtrip_with_clean_stdin_shutdown() {
    let (mut child, mut reader, addr) = spawn_daemon(&[]);

    // form — twice, so the second run exercises the solve cache.
    let out = run_ok(gridvo().args(["request", "form", "--addr", &addr, "--seed", "3"]));
    assert!(out.contains("selected VO"), "no VO in: {out}");
    let out2 = run_ok(gridvo().args(["request", "form", "--addr", &addr, "--seed", "3"]));
    assert_eq!(out, out2, "repeated form request must print identical results");

    // execute (fault-free) against the same daemon
    let out = run_ok(gridvo().args(["request", "execute", "--addr", &addr, "--seed", "3"]));
    assert!(out.contains("executed:"), "no execution in: {out}");
    assert!(out.contains("completed: true"), "did not complete: {out}");

    // registry + trust report
    let out = run_ok(gridvo().args(["request", "registry", "--addr", &addr]));
    assert!(out.contains("epoch 0"), "fresh registry not at epoch 0: {out}");
    let out = run_ok(gridvo().args([
        "request",
        "report-trust",
        "--addr",
        &addr,
        "--from",
        "0",
        "--to",
        "1",
        "--value",
        "0.9",
    ]));
    assert!(out.contains("epoch now 1"), "trust report did not bump epoch: {out}");

    // metrics reflect the traffic above
    let out = run_ok(gridvo().args(["request", "metrics", "--addr", &addr]));
    assert!(out.contains("cache:"), "no cache stats in: {out}");
    assert!(out.contains("form 2"), "form counter wrong in: {out}");

    // closing stdin shuts the daemon down cleanly (exit 0)
    drop(child.stdin.take());
    let status = wait_with_timeout(&mut child, 10);
    assert!(status.success(), "stdin-close shutdown must exit 0, got {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).ok();
    assert!(rest.contains("shut down cleanly"), "no shutdown line in: {rest:?}");
}

#[cfg(unix)]
#[test]
fn sigterm_shuts_the_daemon_down_cleanly() {
    let (mut child, mut reader, addr) = spawn_daemon(&[]);

    // It is actually serving before we signal it.
    let out = run_ok(gridvo().args(["request", "ping", "--addr", &addr]));
    assert!(out.contains("pong"), "no pong in: {out}");

    let status =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(status.success(), "kill -TERM failed");

    let status = wait_with_timeout(&mut child, 10);
    assert!(status.success(), "SIGTERM shutdown must exit 0, got {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).ok();
    assert!(rest.contains("shut down cleanly"), "no shutdown line in: {rest:?}");
}

#[test]
fn request_subcommand_fails_cleanly_without_a_daemon() {
    // Port 1 on loopback is never listening; the client must error,
    // not hang or panic.
    let out = gridvo()
        .args(["request", "metrics", "--addr", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
}
