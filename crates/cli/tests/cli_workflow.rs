//! End-to-end tests of the `gridvo` binary: generate → form → solve →
//! game → stats, through real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn gridvo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gridvo"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridvo-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_workflow_scenario_form_solve_game() {
    let dir = tmpdir("flow");
    let scenario = dir.join("scenario.json");
    let outcome = dir.join("outcome.json");

    let out = run_ok(gridvo().args([
        "generate",
        "scenario",
        "--out",
        scenario.to_str().unwrap(),
        "--tasks",
        "20",
        "--gsps",
        "5",
        "--seed",
        "3",
    ]));
    assert!(out.contains("20 tasks on 5 GSPs"));
    assert!(scenario.exists());

    let out = run_ok(gridvo().args([
        "form",
        "--scenario",
        scenario.to_str().unwrap(),
        "--audit",
        "--out",
        outcome.to_str().unwrap(),
    ]));
    assert!(out.contains("selected VO"), "no VO in: {out}");
    assert!(out.contains("Theorem 1"));
    assert!(out.contains("Theorem 2"));
    assert!(outcome.exists());
    // the outcome round-trips as JSON
    let text = std::fs::read_to_string(&outcome).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert!(parsed.get("iterations").is_some());

    let out = run_ok(gridvo().args([
        "solve",
        "--scenario",
        scenario.to_str().unwrap(),
        "--members",
        "0,1,2",
    ]));
    assert!(out.contains("status:"), "no status in: {out}");

    let out = run_ok(gridvo().args(["game", "--scenario", scenario.to_str().unwrap()]));
    assert!(out.contains("Shapley value"));
    assert!(out.contains("least core"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_generation_and_stats() {
    let dir = tmpdir("trace");
    let trace = dir.join("atlas.swf");
    run_ok(gridvo().args([
        "generate",
        "trace",
        "--out",
        trace.to_str().unwrap(),
        "--jobs",
        "500",
        "--seed",
        "9",
    ]));
    let out = run_ok(gridvo().args(["stats", "--swf", trace.to_str().unwrap()]));
    assert!(out.contains("jobs:            500"));
    assert!(out.contains("completed:"));
    assert!(out.contains("size histogram"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rvof_mechanism_selectable() {
    let dir = tmpdir("rvof");
    let scenario = dir.join("s.json");
    run_ok(gridvo().args([
        "generate",
        "scenario",
        "--out",
        scenario.to_str().unwrap(),
        "--tasks",
        "15",
        "--gsps",
        "4",
        "--seed",
        "1",
    ]));
    let out = run_ok(gridvo().args([
        "form",
        "--scenario",
        scenario.to_str().unwrap(),
        "--mechanism",
        "rvof",
        "--seed",
        "2",
    ]));
    assert!(out.contains("iter"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn execute_subcommand_runs_with_and_without_faults() {
    let dir = tmpdir("exec");
    let scenario = dir.join("scenario.json");
    let report = dir.join("report.json");
    run_ok(gridvo().args([
        "generate",
        "scenario",
        "--out",
        scenario.to_str().unwrap(),
        "--tasks",
        "20",
        "--gsps",
        "5",
        "--seed",
        "3",
    ]));

    // fault-free execution is a pass-through of the formation output
    let out = run_ok(gridvo().args([
        "execute",
        "--scenario",
        scenario.to_str().unwrap(),
        "--faults",
        "0",
        "--out",
        report.to_str().unwrap(),
    ]));
    assert!(out.contains("formed VO"), "no VO in: {out}");
    assert!(out.contains("fault plan: 0 event(s)"), "plan not empty: {out}");
    assert!(out.contains("completed"), "did not complete: {out}");
    let text = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed.get("payoff_retention").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(parsed.get("recoveries").and_then(|v| v.as_array()).map(|a| a.len()), Some(0));

    // a hand-written plan file drives execution deterministically
    let plan = dir.join("plan.json");
    std::fs::write(&plan, r#"{"events":[{"round":0,"gsp":0,"kind":{"kind":"crash"}}]}"#).unwrap();
    let out = run_ok(gridvo().args([
        "execute",
        "--scenario",
        scenario.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
    ]));
    assert!(out.contains("fault plan: 1 event(s)"), "plan not loaded: {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_subcommand_runs() {
    let out = run_ok(
        gridvo().args(["dynamic", "--rounds", "4", "--gsps", "4", "--tasks", "12", "--seed", "1"]),
    );
    assert!(out.contains("mean member reliability"));
    assert!(out.contains("round"));
}

#[test]
fn errors_are_reported_not_panicked() {
    // unknown subcommand
    let out = gridvo().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
    // missing file
    let out = gridvo().args(["form", "--scenario", "/nonexistent.json"]).output().unwrap();
    assert!(!out.status.success());
    // bad flag
    let out = gridvo().args(["form", "--bogus"]).output().unwrap();
    assert!(!out.status.success());
    // tasks < gsps
    let out = gridvo()
        .args(["generate", "scenario", "--out", "/tmp/x.json", "--tasks", "2", "--gsps", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn deterministic_scenarios_under_seed() {
    let dir = tmpdir("det");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for path in [&a, &b] {
        run_ok(gridvo().args([
            "generate",
            "scenario",
            "--out",
            path.to_str().unwrap(),
            "--tasks",
            "12",
            "--gsps",
            "4",
            "--seed",
            "77",
        ]));
    }
    let ta = std::fs::read_to_string(&a).unwrap();
    let tb = std::fs::read_to_string(&b).unwrap();
    assert_eq!(ta, tb, "same seed must give identical scenario files");
    std::fs::remove_dir_all(&dir).ok();
}
