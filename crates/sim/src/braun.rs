//! Braun et al. matrix generation (§IV-A of the paper).
//!
//! * **Cost matrix** — the baseline × row-multiplier method of Braun
//!   et al. (JPDC 2001): a baseline value per task uniform in
//!   `[1, φ_b]`, multiplied per GSP by a uniform row multiplier in
//!   `[1, φ_r]`, so every entry lies in `[1, φ_b·φ_r]`. The matrix is
//!   *inconsistent* (a GSP cheap for one task can be expensive for
//!   another — "GSP policies"). The paper additionally requires costs
//!   to be **workload-monotone**: a heavier task costs more than a
//!   lighter one on *every* GSP. We enforce that by sorting each GSP's
//!   cost column to match the workload order — a permutation that
//!   preserves the Braun marginal distribution exactly.
//!
//! * **Time matrix** — `t(T, G) = w(T)/s(G)`: *consistent* by
//!   construction (a faster GSP is faster for every task), which is
//!   the property the paper proves in §IV-A.

use rand::Rng;

/// Generate the raw Braun cost matrix (task-major, `n × m`): entry
/// `(t, g) = baseline[t] × U[1, φ_r]`, `baseline[t] ∈ U[1, φ_b]`.
pub fn braun_cost_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    tasks: usize,
    gsps: usize,
    phi_b: f64,
    phi_r: f64,
) -> Vec<f64> {
    let baseline: Vec<f64> = (0..tasks).map(|_| rng.gen_range(1.0..=phi_b)).collect();
    let mut cost = Vec::with_capacity(tasks * gsps);
    for &b in &baseline {
        for _ in 0..gsps {
            cost.push(b * rng.gen_range(1.0..=phi_r));
        }
    }
    cost
}

/// Rearrange a cost matrix so each GSP's column is monotone in task
/// workload: for any two tasks with `w(T_j) > w(T_q)`,
/// `c(T_j, G) > c(T_q, G)` on every GSP. Column value *sets* are
/// preserved (only permuted), so the Braun marginals are intact.
pub fn enforce_workload_monotonicity(cost: &mut [f64], workloads: &[f64], gsps: usize) {
    let tasks = workloads.len();
    debug_assert_eq!(cost.len(), tasks * gsps);
    // rank of each task by workload (0 = lightest)
    let mut order: Vec<usize> = (0..tasks).collect();
    order.sort_by(|&a, &b| workloads[a].partial_cmp(&workloads[b]).expect("finite workloads"));
    let mut rank = vec![0usize; tasks];
    for (r, &t) in order.iter().enumerate() {
        rank[t] = r;
    }
    let mut column = Vec::with_capacity(tasks);
    for g in 0..gsps {
        column.clear();
        column.extend((0..tasks).map(|t| cost[t * gsps + g]));
        column.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        for t in 0..tasks {
            cost[t * gsps + g] = column[rank[t]];
        }
    }
}

/// The consistent execution-time matrix `t(T, G) = w(T)/s(G)`
/// (task-major, `n × m`).
pub fn time_matrix(workloads: &[f64], speeds_gflops: &[f64]) -> Vec<f64> {
    let mut time = Vec::with_capacity(workloads.len() * speeds_gflops.len());
    for &w in workloads {
        for &s in speeds_gflops {
            time.push(w / s);
        }
    }
    time
}

/// Audit: is a task-major time matrix consistent? (GSP faster for one
/// task ⇒ faster for all.)
pub fn is_consistent(time: &[f64], tasks: usize, gsps: usize) -> bool {
    if tasks == 0 || gsps < 2 {
        return true;
    }
    for a in 0..gsps {
        for b in (a + 1)..gsps {
            let first = time[a].partial_cmp(&time[b]).expect("finite");
            for t in 1..tasks {
                let cmp = time[t * gsps + a].partial_cmp(&time[t * gsps + b]).expect("finite");
                if cmp != first
                    && cmp != std::cmp::Ordering::Equal
                    && first != std::cmp::Ordering::Equal
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Audit: is a task-major cost matrix workload-monotone w.r.t.
/// `workloads` (heavier ⇒ at least as costly on every GSP)?
pub fn is_workload_monotone(cost: &[f64], workloads: &[f64], gsps: usize) -> bool {
    let tasks = workloads.len();
    let mut order: Vec<usize> = (0..tasks).collect();
    order.sort_by(|&a, &b| workloads[a].partial_cmp(&workloads[b]).expect("finite"));
    for g in 0..gsps {
        for w in order.windows(2) {
            if cost[w[0] * gsps + g] > cost[w[1] * gsps + g] + 1e-12 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    #[test]
    fn braun_entries_in_range() {
        let mut rng = TestRng::seed_from_u64(1);
        let c = braun_cost_matrix(&mut rng, 50, 8, 100.0, 10.0);
        assert_eq!(c.len(), 400);
        for &v in &c {
            assert!((1.0..=1000.0).contains(&v), "entry {v} outside [1, 1000]");
        }
    }

    #[test]
    fn braun_rows_share_baseline() {
        // all entries of a task's row lie within φ_r of each other
        let mut rng = TestRng::seed_from_u64(2);
        let c = braun_cost_matrix(&mut rng, 20, 6, 100.0, 10.0);
        for t in 0..20 {
            let row = &c[t * 6..(t + 1) * 6];
            let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = row.iter().cloned().fold(0.0f64, f64::max);
            assert!(hi / lo <= 10.0 + 1e-9, "row spread {}", hi / lo);
        }
    }

    #[test]
    fn monotonicity_enforcement_works_and_preserves_column_sets() {
        let mut rng = TestRng::seed_from_u64(3);
        let tasks = 30;
        let gsps = 5;
        let workloads: Vec<f64> = (0..tasks).map(|_| rng.gen_range(10.0..1000.0)).collect();
        let mut cost = braun_cost_matrix(&mut rng, tasks, gsps, 100.0, 10.0);
        let mut before_cols: Vec<Vec<f64>> =
            (0..gsps).map(|g| (0..tasks).map(|t| cost[t * gsps + g]).collect()).collect();
        enforce_workload_monotonicity(&mut cost, &workloads, gsps);
        assert!(is_workload_monotone(&cost, &workloads, gsps));
        // column value multisets unchanged
        for (g, col) in before_cols.iter_mut().enumerate() {
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut after: Vec<f64> = (0..tasks).map(|t| cost[t * gsps + g]).collect();
            after.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (x, y) in col.iter().zip(after.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn time_matrix_is_consistent() {
        let workloads = vec![100.0, 300.0, 50.0];
        let speeds = vec![80.0, 600.0, 200.0];
        let t = time_matrix(&workloads, &speeds);
        assert!(is_consistent(&t, 3, 3));
        assert!((t[0] - 100.0 / 80.0).abs() < 1e-12);
        assert!((t[3 + 2] - 300.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_matrix_detected() {
        // GSP 0 faster for task 0, slower for task 1
        let t = vec![1.0, 2.0, 3.0, 2.0];
        assert!(!is_consistent(&t, 2, 2));
    }

    #[test]
    fn raw_braun_matrix_usually_not_monotone() {
        // sanity: the enforcement step is actually doing something
        let mut rng = TestRng::seed_from_u64(4);
        let tasks = 40;
        let gsps = 6;
        let workloads: Vec<f64> = (0..tasks).map(|_| rng.gen_range(10.0..1000.0)).collect();
        let cost = braun_cost_matrix(&mut rng, tasks, gsps, 100.0, 10.0);
        assert!(!is_workload_monotone(&cost, &workloads, gsps));
    }

    #[test]
    fn degenerate_shapes() {
        assert!(is_consistent(&[], 0, 3));
        assert!(is_workload_monotone(&[], &[], 3));
        let mut empty: Vec<f64> = vec![];
        enforce_workload_monotonicity(&mut empty, &[], 3);
    }
}
