//! # gridvo-sim
//!
//! Experiment harness reproducing the evaluation of Mashayekhy &
//! Grosu (ICPP 2012, §IV): Table-I instance generation on top of the
//! synthetic Atlas workload, the Braun-et-al. cost model, a multi-seed
//! runner, and one experiment definition per paper figure.
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Table I (simulation parameters) | [`config::TableI`] + generation audits |
//! | Fig. 1 (payoff vs #tasks) | [`experiments::task_sweep`] |
//! | Fig. 2 (final VO size)    | [`experiments::task_sweep`] |
//! | Fig. 3 (average reputation) | [`experiments::task_sweep`] |
//! | Fig. 4 (per-program payoffs, selection rules) | [`experiments::selection_comparison`] |
//! | Figs. 5–8 (iteration traces) | [`experiments::iteration_trace`] |
//! | Fig. 9 (execution time) | [`experiments::task_sweep`] |
//!
//! ## Quick example
//!
//! ```
//! use gridvo_sim::config::TableI;
//! use gridvo_sim::instance_gen::ScenarioGenerator;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = TableI { task_sizes: vec![32], gsps: 4, ..TableI::small() };
//! let gen = ScenarioGenerator::new(cfg);
//! let scenario = gen.scenario(32, &mut rng).unwrap();
//! assert_eq!(scenario.gsp_count(), 4);
//! assert_eq!(scenario.task_count(), 32);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod braun;
pub mod config;
pub mod dynamic;
pub mod experiments;
pub mod faults;
pub mod instance_gen;
pub mod market;
pub mod report;
pub mod runner;

pub use config::TableI;
pub use instance_gen::ScenarioGenerator;

/// Errors from the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No feasible scenario could be generated within the calibration
    /// attempt budget.
    CalibrationFailed {
        /// Task count requested.
        tasks: usize,
        /// Attempts made.
        attempts: usize,
    },
    /// The core mechanism failed.
    Core(String),
    /// The synthetic trace had no qualifying job.
    NoQualifyingJob,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CalibrationFailed { tasks, attempts } => {
                write!(f, "no feasible scenario for {tasks} tasks after {attempts} attempts")
            }
            SimError::Core(e) => write!(f, "mechanism error: {e}"),
            SimError::NoQualifyingJob => write!(f, "trace contains no large completed job"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<gridvo_core::CoreError> for SimError {
    fn from(e: gridvo_core::CoreError) -> Self {
        SimError::Core(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
