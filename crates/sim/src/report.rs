//! Rendering experiment results as CSV (for plotting) and JSON (for
//! archival). Each renderer emits exactly the series the corresponding
//! paper figure plots.

use crate::experiments::{
    FaultSweepPoint, ReputationPoint, ScalePoint, SelectionComparison, SweepPoint, TracePair,
    WarmColdPoint,
};
use serde::{Deserialize, Serialize};

/// CSV for Fig. 1: `tasks, tvof_payoff, tvof_std, rvof_payoff, rvof_std`.
pub fn fig1_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("tasks,tvof_payoff,tvof_std,rvof_payoff,rvof_std\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            p.tasks, p.tvof_payoff.mean, p.tvof_payoff.std, p.rvof_payoff.mean, p.rvof_payoff.std
        ));
    }
    out
}

/// CSV for Fig. 2: final VO sizes.
pub fn fig2_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("tasks,tvof_vo_size,tvof_std,rvof_vo_size,rvof_std\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            p.tasks,
            p.tvof_vo_size.mean,
            p.tvof_vo_size.std,
            p.rvof_vo_size.mean,
            p.rvof_vo_size.std
        ));
    }
    out
}

/// CSV for Fig. 3: average global reputation.
pub fn fig3_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("tasks,tvof_reputation,tvof_std,rvof_reputation,rvof_std\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6}\n",
            p.tasks,
            p.tvof_reputation.mean,
            p.tvof_reputation.std,
            p.rvof_reputation.mean,
            p.rvof_reputation.std
        ));
    }
    out
}

/// CSV for Fig. 9: execution time.
pub fn fig9_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("tasks,tvof_seconds,tvof_std,rvof_seconds,rvof_std\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            p.tasks,
            p.tvof_seconds.mean,
            p.tvof_seconds.std,
            p.rvof_seconds.mean,
            p.rvof_seconds.std
        ));
    }
    out
}

/// CSV for Fig. 4: per-program payoff of the max-payoff VO vs the
/// max-product VO.
pub fn fig4_csv(rows: &[SelectionComparison]) -> String {
    let mut out = String::from("program,max_payoff_share,max_product_share,same_vo\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{},{:.6},{:.6},{}\n",
            i + 1,
            r.max_payoff_share,
            r.max_product_share,
            r.same_vo
        ));
    }
    out
}

/// CSV for Figs. 5–8: one row per (mechanism, iteration) with VO size,
/// payoff and reputation — the two series each trace figure plots.
pub fn trace_csv(trace: &TracePair) -> String {
    let mut out =
        String::from("mechanism,iteration,vo_size,feasible,payoff_share,avg_reputation\n");
    for (name, iters) in [("TVOF", &trace.tvof), ("RVOF", &trace.rvof)] {
        for it in iters {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6}\n",
                name,
                it.iteration,
                it.members.len(),
                it.feasible,
                it.payoff_share.map_or(String::from(""), |p| format!("{p:.6}")),
                it.avg_reputation
            ));
        }
    }
    out
}

/// CSV for the fault-injection sweep: recovery rate, completion rate,
/// payoff retention, repair share and recovery latency vs. fault rate.
pub fn faults_csv(points: &[FaultSweepPoint]) -> String {
    let mut out = String::from(
        "fault_rate,recovery_rate,completion_rate,payoff_retention,repair_fraction,recovery_seconds,runs\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:.3},{:.4},{:.4},{:.4},{:.4},{:.6},{}\n",
            p.fault_rate,
            p.recovery_rate.mean,
            p.completion_rate,
            p.payoff_retention.mean,
            p.repair_fraction,
            p.recovery_seconds.mean,
            p.runs
        ));
    }
    out
}

/// CSV for the adversary-economics sweep: one row per strategy.
pub fn reputation_csv(points: &[ReputationPoint]) -> String {
    let mut out = String::from(
        "strategy,attacker_selection,attacker_payoff,attacker_payoff_share,\
         honest_selection,honest_payoff,rounds\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
            p.strategy,
            p.attacker_selection.mean,
            p.attacker_payoff.mean,
            p.attacker_payoff_share.mean,
            p.honest_selection.mean,
            p.honest_payoff.mean,
            p.rounds
        ));
    }
    out
}

/// The combined `BENCH_formation.json` artifact: the warm/cold
/// incremental benchmark plus the anytime scale frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFormation {
    /// Cold vs warm formation runs per program size.
    pub warm_cold: Vec<WarmColdPoint>,
    /// Budgeted portfolio formation per provider-pool size.
    pub scale_frontier: Vec<ScalePoint>,
}

/// CSV for the scale frontier: one row per GSP count.
pub fn scale_csv(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "gsps,tasks,seconds_mean,nodes,mean_gap,worst_gap,truncated_runs,formed_runs,exact_match\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{:.6},{},{:.6},{:.6},{},{},{}\n",
            p.gsps,
            p.tasks,
            p.seconds.mean,
            p.nodes,
            p.mean_gap,
            p.worst_gap,
            p.truncated_runs,
            p.formed_runs,
            p.exact_match.map_or("n/a".to_string(), |m| m.to_string()),
        ));
    }
    out
}

/// Pretty JSON for any serializable result.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Aggregate;

    fn point(tasks: usize) -> SweepPoint {
        let a = |m: f64| Aggregate { mean: m, std: 0.1, n: 10 };
        SweepPoint {
            tasks,
            tvof_payoff: a(5.0),
            rvof_payoff: a(4.9),
            tvof_vo_size: a(6.0),
            rvof_vo_size: a(7.0),
            tvof_reputation: a(0.4),
            rvof_reputation: a(0.3),
            tvof_seconds: a(1.5),
            rvof_seconds: a(1.4),
            formed_runs: 10,
        }
    }

    #[test]
    fn fig_csvs_have_header_and_rows() {
        let pts = vec![point(256), point(512)];
        for csv in [fig1_csv(&pts), fig2_csv(&pts), fig3_csv(&pts), fig9_csv(&pts)] {
            let lines: Vec<&str> = csv.trim().lines().collect();
            assert_eq!(lines.len(), 3);
            assert!(lines[0].starts_with("tasks,"));
            assert!(lines[1].starts_with("256,"));
            assert!(lines[2].starts_with("512,"));
        }
    }

    #[test]
    fn fig4_csv_rows() {
        let rows = vec![SelectionComparison {
            seed: 1,
            max_payoff_share: 10.0,
            max_product_share: 9.5,
            same_vo: false,
        }];
        let csv = fig4_csv(&rows);
        assert!(csv.contains("1,10.000000,9.500000,false"));
    }

    #[test]
    fn trace_csv_contains_both_mechanisms() {
        let it = gridvo_core::IterationRecord {
            iteration: 0,
            members: vec![0, 1],
            feasible: true,
            cost: Some(3.0),
            payoff_share: Some(1.5),
            avg_reputation: 0.5,
            reputation_scores: vec![0.5, 0.5],
            evicted: Some(1),
            solve_seconds: 0.01,
            nodes: 17,
            incumbent_source: Some("warm".to_string()),
            gap: Some(0.0),
            power_iterations: 3,
        };
        let t = TracePair { tasks: 12, seed: 1, tvof: vec![it.clone()], rvof: vec![it] };
        let csv = trace_csv(&t);
        assert!(csv.contains("TVOF,0,2,true,1.500000,0.500000"));
        assert!(csv.contains("RVOF,0,2,true"));
    }

    #[test]
    fn json_serializes() {
        let pts = vec![point(256)];
        let json = to_json(&pts);
        assert!(json.contains("\"tasks\": 256"));
    }
}

/// Gnuplot script that renders one of the sweep figures from its CSV.
/// `value_label` is the y-axis label; the CSV layout is the shared
/// `tasks, tvof_mean, tvof_std, rvof_mean, rvof_std` of Figs. 1/2/3/9.
pub fn sweep_gnuplot(csv_name: &str, out_name: &str, title: &str, value_label: &str) -> String {
    format!(
        "set datafile separator ','\n\
         set terminal pngcairo size 900,600\n\
         set output '{out_name}'\n\
         set title '{title}'\n\
         set xlabel 'Number of tasks'\n\
         set ylabel '{value_label}'\n\
         set logscale x 2\n\
         set key top left\n\
         plot '{csv_name}' skip 1 using 1:2:3 with yerrorlines title 'TVOF', \\\n\
         \x20    '{csv_name}' skip 1 using 1:4:5 with yerrorlines title 'RVOF'\n"
    )
}

/// Gnuplot script for an iteration-trace figure (Figs. 5–8): payoff on
/// the left axis, average reputation on the right, VO size descending
/// along x — regenerated from [`trace_csv`] output filtered by
/// mechanism.
pub fn trace_gnuplot(csv_name: &str, out_name: &str, mechanism: &str, title: &str) -> String {
    format!(
        "set datafile separator ','\n\
         set terminal pngcairo size 900,600\n\
         set output '{out_name}'\n\
         set title '{title}'\n\
         set xlabel 'Iteration (VO shrinks left to right)'\n\
         set ylabel 'Individual payoff'\n\
         set y2label 'Average global reputation'\n\
         set y2tics\n\
         set key top left\n\
         plot '< grep \"^{mechanism},\" {csv_name}' using 2:5 with linespoints \\\n\
         \x20    axes x1y1 title 'payoff', \\\n\
         \x20    '< grep \"^{mechanism},\" {csv_name}' using 2:6 with linespoints \\\n\
         \x20    axes x1y2 title 'avg reputation'\n"
    )
}

#[cfg(test)]
mod gnuplot_tests {
    use super::*;

    #[test]
    fn sweep_script_references_its_files() {
        let s = sweep_gnuplot("fig1_payoff.csv", "fig1.png", "Fig. 1", "Payoff per GSP");
        assert!(s.contains("fig1_payoff.csv"));
        assert!(s.contains("set output 'fig1.png'"));
        assert!(s.contains("yerrorlines"));
        assert!(s.matches("fig1_payoff.csv").count() == 2, "both series plotted");
    }

    #[test]
    fn trace_script_filters_mechanism() {
        let s = trace_gnuplot("fig56_program_A.csv", "fig5.png", "TVOF", "Fig. 5");
        assert!(s.contains("grep \"^TVOF,\""));
        assert!(s.contains("axes x1y2"));
    }
}
