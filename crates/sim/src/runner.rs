//! Multi-seed experiment runner and aggregation.
//!
//! The paper reports "a series of ten experiments for each case,
//! \[representing\] the average of the obtained results". The runner
//! executes seeds in parallel (rayon) — each seed derives its own
//! deterministic RNG, so results are reproducible regardless of thread
//! scheduling.

use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Deterministic per-seed RNG: a `StdRng` keyed by (experiment, seed).
pub fn seeded_rng(experiment_tag: u64, seed: u64) -> rand::rngs::StdRng {
    // SplitMix64-style mix of tag and seed into one key.
    let mut z = experiment_tag
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    rand::rngs::StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Mean / standard deviation / count of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

impl Aggregate {
    /// Aggregate a sample. Empty samples yield zeros.
    pub fn of(values: &[f64]) -> Aggregate {
        let n = values.len();
        if n == 0 {
            return Aggregate { mean: 0.0, std: 0.0, n: 0 };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Aggregate { mean, std, n }
    }
}

/// Run `per_seed` for every seed in parallel, preserving seed order in
/// the output. Failures are surfaced per seed.
pub fn run_seeds<T, E, F>(experiment_tag: u64, seeds: &[u64], per_seed: F) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    F: Fn(u64, &mut rand::rngs::StdRng) -> Result<T, E> + Sync,
{
    seeds
        .par_iter()
        .map(|&seed| {
            let mut rng = seeded_rng(experiment_tag, seed);
            per_seed(seed, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_known_sample() {
        let a = Aggregate::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((a.mean - 5.0).abs() < 1e-12);
        assert!((a.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.n, 8);
    }

    #[test]
    fn aggregate_edge_cases() {
        assert_eq!(Aggregate::of(&[]), Aggregate { mean: 0.0, std: 0.0, n: 0 });
        let single = Aggregate::of(&[3.0]);
        assert_eq!(single.mean, 3.0);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn seeded_rng_is_deterministic_and_distinct() {
        use rand::Rng;
        let a: u64 = seeded_rng(1, 7).gen();
        let b: u64 = seeded_rng(1, 7).gen();
        let c: u64 = seeded_rng(1, 8).gen();
        let d: u64 = seeded_rng(2, 7).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn run_seeds_preserves_order() {
        let seeds = [5u64, 1, 9, 3];
        let out: Vec<Result<u64, ()>> = run_seeds(0, &seeds, |seed, _rng| Ok(seed * 10));
        let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![50, 10, 90, 30]);
    }

    #[test]
    fn run_seeds_propagates_errors() {
        let seeds = [1u64, 2];
        let out: Vec<Result<u64, String>> =
            run_seeds(
                0,
                &seeds,
                |seed, _| {
                    if seed == 2 {
                        Err("boom".to_string())
                    } else {
                        Ok(seed)
                    }
                },
            );
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err("boom".to_string()));
    }
}
