//! Adversary models for the receipt-driven reputation loop.
//!
//! The paper's trust graph is exogenous — GSPs *declare* trust. The
//! Beta-reputation overlay ([`gridvo_trust::beta`]) replaces declared
//! edges with evidence earned from execution receipts, and the point
//! of earning trust is that the classic reputation attacks stop
//! paying. This module parameterizes a dynamic simulation
//! ([`crate::dynamic::simulate`]) with the three canonical attacks:
//!
//! * **whitewashing** — an unreliable GSP periodically sheds its
//!   identity, re-entering with a clean (prior-only) record;
//! * **oscillating defection** — a GSP alternates honest phases
//!   (building reputation) with defection phases (spending it);
//! * **badmouthing ring** — a colluding clique rates its own members
//!   `Delivered` and every honest co-member `Failed`, regardless of
//!   what actually happened.
//!
//! The suite in `tests/adversaries.rs` asserts the economic claim:
//! under receipt-driven Beta trust, each attacker's selection rate and
//! payoff share collapse below the honest baseline within a bounded
//! number of rounds.

/// Which reputation attack the designated attackers play.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Attackers play honestly — the baseline the attacks are
    /// measured against (same ids, same reliabilities, no strategy).
    Honest,
    /// Every `period` rounds the attacker re-enters under a fresh
    /// identity: all Beta evidence touching it (both directions) is
    /// forgotten, leaving only the prior.
    Whitewash {
        /// Rounds between identity resets.
        period: usize,
    },
    /// The attacker alternates phases of `period` rounds: honest
    /// phases at [`OSCILLATE_GOOD`] reliability, defection phases at
    /// [`OSCILLATE_BAD`].
    Oscillate {
        /// Phase length in rounds.
        period: usize,
    },
    /// Attackers form a collusion ring: each ring member's reports
    /// rate fellow ring members `Delivered` and honest co-members
    /// `Failed`, always. Their actual (low) reliability is whatever
    /// the config assigns them.
    BadmouthRing,
}

/// Delivery probability of an oscillating defector in its honest
/// phase.
pub const OSCILLATE_GOOD: f64 = 0.95;
/// Delivery probability of an oscillating defector in its defection
/// phase.
pub const OSCILLATE_BAD: f64 = 0.05;

/// Switches a dynamic simulation from ledger-decay trust to
/// receipt-driven Beta reputation, optionally with adversaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaDynamics {
    /// Discount factor applied to an edge's Beta parameters before
    /// each new observation ([`gridvo_trust::beta::DEFAULT_LAMBDA`]
    /// is the calibrated default).
    pub lambda: f64,
    /// GSP ids playing the adversary strategy. Empty means everyone
    /// is honest (pure closed-loop reputation, no attack).
    pub attackers: Vec<usize>,
    /// The strategy the attackers play.
    pub kind: AdversaryKind,
}

impl BetaDynamics {
    /// Honest closed-loop dynamics at discount `lambda`: receipts
    /// drive trust, nobody attacks.
    pub fn honest(lambda: f64) -> Self {
        BetaDynamics { lambda, attackers: Vec::new(), kind: AdversaryKind::Honest }
    }

    /// `attackers` playing `kind` at discount `lambda`.
    pub fn attack(lambda: f64, attackers: Vec<usize>, kind: AdversaryKind) -> Self {
        BetaDynamics { lambda, attackers, kind }
    }

    /// Whether `gsp` is one of the designated attackers.
    pub fn is_attacker(&self, gsp: usize) -> bool {
        self.attackers.contains(&gsp)
    }

    /// The attacker's *effective* reliability at `round`, given its
    /// configured baseline: oscillating defectors override it by
    /// phase, every other strategy keeps it.
    pub fn effective_reliability(&self, gsp: usize, round: usize, configured: f64) -> f64 {
        match self.kind {
            AdversaryKind::Oscillate { period } if self.is_attacker(gsp) && period > 0 => {
                if (round / period).is_multiple_of(2) {
                    OSCILLATE_GOOD
                } else {
                    OSCILLATE_BAD
                }
            }
            _ => configured,
        }
    }

    /// Whether `gsp` resets its identity *before* `round` forms.
    /// Round 0 never resets (there is nothing to shed yet).
    pub fn whitewashes_at(&self, gsp: usize, round: usize) -> bool {
        match self.kind {
            AdversaryKind::Whitewash { period } => {
                period > 0 && round > 0 && round.is_multiple_of(period) && self.is_attacker(gsp)
            }
            _ => false,
        }
    }

    /// What `rater` *reports* about `ratee`, given the truthful
    /// outcome: badmouth-ring members lie along ring lines, everyone
    /// else reports the truth.
    pub fn reported_outcome(&self, rater: usize, ratee: usize, truthful: bool) -> bool {
        match self.kind {
            AdversaryKind::BadmouthRing if self.is_attacker(rater) => self.is_attacker(ratee),
            _ => truthful,
        }
    }
}

/// Selection rate of `gsp` over `records`: the fraction of formed
/// rounds whose VO includes it.
pub fn selection_rate(records: &[crate::dynamic::RoundRecord], gsp: usize) -> f64 {
    let formed: Vec<_> = records.iter().filter(|r| !r.members.is_empty()).collect();
    if formed.is_empty() {
        return 0.0;
    }
    formed.iter().filter(|r| r.members.contains(&gsp)).count() as f64 / formed.len() as f64
}

/// Mean per-round payoff `gsp` earned over `records` (0 in rounds it
/// was not selected or the program failed).
pub fn mean_payoff(records: &[crate::dynamic::RoundRecord], gsp: usize) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| if r.members.contains(&gsp) { r.payoff_share } else { 0.0 }).sum::<f64>()
        / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillation_phases_alternate() {
        let d = BetaDynamics::attack(0.98, vec![3], AdversaryKind::Oscillate { period: 2 });
        assert_eq!(d.effective_reliability(3, 0, 0.5), OSCILLATE_GOOD);
        assert_eq!(d.effective_reliability(3, 1, 0.5), OSCILLATE_GOOD);
        assert_eq!(d.effective_reliability(3, 2, 0.5), OSCILLATE_BAD);
        assert_eq!(d.effective_reliability(3, 3, 0.5), OSCILLATE_BAD);
        assert_eq!(d.effective_reliability(3, 4, 0.5), OSCILLATE_GOOD);
        // Non-attackers keep their configured reliability.
        assert_eq!(d.effective_reliability(0, 2, 0.5), 0.5);
    }

    #[test]
    fn whitewash_schedule_skips_round_zero() {
        let d = BetaDynamics::attack(0.98, vec![1], AdversaryKind::Whitewash { period: 3 });
        assert!(!d.whitewashes_at(1, 0));
        assert!(!d.whitewashes_at(1, 2));
        assert!(d.whitewashes_at(1, 3));
        assert!(d.whitewashes_at(1, 6));
        assert!(!d.whitewashes_at(0, 3), "honest GSPs never reset");
    }

    #[test]
    fn badmouth_ring_lies_along_ring_lines() {
        let d = BetaDynamics::attack(0.98, vec![4, 5], AdversaryKind::BadmouthRing);
        // Ring rater: fellow ring member always Delivered…
        assert!(d.reported_outcome(4, 5, false));
        // …honest co-member always Failed.
        assert!(!d.reported_outcome(4, 0, true));
        // Honest raters tell the truth about everyone.
        assert!(d.reported_outcome(0, 5, true));
        assert!(!d.reported_outcome(0, 4, false));
    }

    #[test]
    fn honest_dynamics_change_nothing() {
        let d = BetaDynamics::honest(1.0);
        assert!(!d.is_attacker(0));
        assert_eq!(d.effective_reliability(0, 9, 0.7), 0.7);
        assert!(!d.whitewashes_at(0, 9));
        assert!(d.reported_outcome(0, 1, true));
        assert!(!d.reported_outcome(0, 1, false));
    }

    #[test]
    fn rate_helpers_handle_empty_records() {
        assert_eq!(selection_rate(&[], 0), 0.0);
        assert_eq!(mean_payoff(&[], 0), 0.0);
    }
}
