//! Table I — the paper's simulation parameters, as data.

use serde::{Deserialize, Serialize};

/// All parameters of Table I plus harness knobs. Field docs quote the
/// table's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableI {
    /// `m` — number of GSPs (paper: 16).
    pub gsps: usize,
    /// Program sizes (#tasks) swept by the evaluation
    /// (paper: 256, 512, 1024, 2048, 4096, 8192 from `[8, 8832]`).
    pub task_sizes: Vec<usize>,
    /// GSP speed range as multiples of one Atlas processor
    /// (paper: `4.91 × [16, 128]` GFLOPS).
    pub speed_multiplier_range: (f64, f64),
    /// GFLOPS of one Atlas processor (paper: 4.91).
    pub gflops_per_proc: f64,
    /// `φ_b` — maximum baseline cost value (paper: 100).
    pub phi_b: f64,
    /// `φ_r` — maximum row multiplier (paper: 10).
    pub phi_r: f64,
    /// Deadline factor range: `d = U[0.3, 2.0] × Runtime × n / 1000`
    /// seconds (paper's Table I row for `d`).
    pub deadline_factor_range: (f64, f64),
    /// Payment factor range: `P = U[0.2, 0.4] × max_c × n` units,
    /// `max_c = φ_b × φ_r` (paper's Table I row for `P`).
    pub payment_factor_range: (f64, f64),
    /// Minimum job runtime for program extraction (paper: ≥ 7200 s).
    pub min_runtime: f64,
    /// Erdős–Rényi edge probability for the trust graph (paper: 0.1).
    pub trust_p: f64,
    /// Trust edge-weight range (paper: uniform weights; we use (0, 1]).
    pub trust_weight_range: (f64, f64),
    /// Synthetic trace length fed to the extractor.
    pub trace_jobs: usize,
    /// Calibration attempts before giving up on a feasible scenario
    /// (the paper generates d and P "in such a way that there exists a
    /// feasible solution in each experiment").
    pub calibration_attempts: usize,
    /// Node budget for the exact solver inside experiments (anytime
    /// truncation guard; the paper's CPLEX has no such knob but also
    /// never reports an unsolved instance).
    pub solver_node_budget: u64,
}

impl Default for TableI {
    fn default() -> Self {
        TableI {
            gsps: 16,
            task_sizes: vec![256, 512, 1024, 2048, 4096, 8192],
            speed_multiplier_range: (16.0, 128.0),
            gflops_per_proc: 4.91,
            phi_b: 100.0,
            phi_r: 10.0,
            deadline_factor_range: (0.3, 2.0),
            payment_factor_range: (0.2, 0.4),
            min_runtime: 7_200.0,
            trust_p: 0.1,
            trust_weight_range: (0.05, 1.0),
            trace_jobs: 20_000,
            calibration_attempts: 60,
            solver_node_budget: 2_000_000,
        }
    }
}

impl TableI {
    /// The paper's `max_c = φ_b × φ_r` (maximum cost-matrix entry).
    pub fn max_cost(&self) -> f64 {
        self.phi_b * self.phi_r
    }

    /// A downsized configuration for unit tests and CI: fewer GSPs,
    /// small programs, a short trace.
    pub fn small() -> Self {
        TableI {
            gsps: 6,
            task_sizes: vec![16, 32, 64],
            trace_jobs: 2_000,
            solver_node_budget: 200_000,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let c = TableI::default();
        assert_eq!(c.gsps, 16);
        assert_eq!(c.task_sizes, vec![256, 512, 1024, 2048, 4096, 8192]);
        assert_eq!(c.phi_b, 100.0);
        assert_eq!(c.phi_r, 10.0);
        assert_eq!(c.max_cost(), 1000.0);
        assert_eq!(c.gflops_per_proc, 4.91);
        assert_eq!(c.deadline_factor_range, (0.3, 2.0));
        assert_eq!(c.payment_factor_range, (0.2, 0.4));
        assert_eq!(c.min_runtime, 7200.0);
        assert_eq!(c.trust_p, 0.1);
    }

    #[test]
    fn serde_round_trip() {
        let c = TableI::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: TableI = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn small_config_is_smaller() {
        let s = TableI::small();
        assert!(s.gsps < 16);
        assert!(s.task_sizes.iter().all(|&n| n <= 64));
    }
}
