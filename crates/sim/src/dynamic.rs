//! Dynamic VO formation across rounds — the "dynamic" of the paper's
//! title, made operational.
//!
//! The ICPP 2012 evaluation forms one VO per program with a *given*
//! trust graph. This module closes the loop the paper's model implies:
//!
//! 1. each GSP has a hidden **reliability** — the probability it
//!    actually delivers the resources it promised (§I: "a GSP agrees
//!    to provide some resources, but it fails to deliver");
//! 2. programs arrive in rounds; the current trust graph is
//!    materialized from the **interaction ledger** (optionally with
//!    Azzedin–Maheswaran decay, to reproduce the freeze critique);
//! 3. the mechanism forms a VO and the program runs: every member
//!    delivers or fails according to its reliability, every member
//!    observes every other member, and the observations are appended
//!    to the ledger;
//! 4. the next round's trust — and hence reputation — reflects the
//!    accumulated evidence.
//!
//! The headline dynamic claim: under TVOF the mean reliability of
//! selected VO members **rises over rounds** (the mechanism learns to
//! exclude unreliable GSPs through reputation), while RVOF shows no
//! such drift. [`simulate`] produces the per-round records behind that
//! comparison; `gridvo-bench`'s `dynamic_rounds` binary renders it.

use crate::adversary::BetaDynamics;
use crate::config::TableI;
use crate::faults::FaultModel;
use crate::instance_gen::ScenarioGenerator;
use crate::{Result, SimError};
use gridvo_core::mechanism::Mechanism;
use gridvo_core::{ExecutionReceipt, FormationScenario};
use gridvo_trust::beta::BetaLedger;
use gridvo_trust::decay::{DecayModel, InteractionLedger, Outcome};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-round dynamic simulation.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Static Table-I parameters (GSP count, cost model, …).
    pub table: TableI,
    /// Number of programs (rounds) to simulate.
    pub rounds: usize,
    /// Tasks per program.
    pub tasks: usize,
    /// Hidden per-GSP delivery probability, indexed by GSP id; length
    /// must equal `table.gsps`.
    pub reliabilities: Vec<f64>,
    /// Trust evidence model (half-life = ∞ reproduces the paper's
    /// non-decaying trust).
    pub decay: DecayModel,
    /// Simulated seconds between program arrivals.
    pub round_interval: f64,
    /// Bootstrap interactions: each ordered GSP pair starts with one
    /// `Delivered` observation with this probability (an ER-style
    /// prior so round 0 is not trust-blind).
    pub bootstrap_p: f64,
    /// Execution-time fault injection: when set, every selected VO is
    /// run against a seeded [`FaultPlan`](gridvo_core::FaultPlan) drawn
    /// from this model and recovered via the repair-first policy.
    /// `None` (the default) adds no RNG draws, so existing seeded runs
    /// replay byte-identically.
    pub faults: Option<FaultModel>,
    /// Receipt-driven Beta reputation: when set, per-round trust is
    /// the earned-trust graph of a [`BetaLedger`] fed by execution
    /// receipts (and adversarial lies, if configured) instead of the
    /// decayed interaction ledger. `None` (the default) adds no RNG
    /// draws and leaves the classic path byte-identical.
    pub beta: Option<BetaDynamics>,
}

impl DynamicConfig {
    /// A defaulted configuration over `table` with uniform-random
    /// reliabilities supplied by the caller.
    pub fn new(table: TableI, rounds: usize, tasks: usize, reliabilities: Vec<f64>) -> Self {
        DynamicConfig {
            table,
            rounds,
            tasks,
            reliabilities,
            decay: DecayModel::default(),
            round_interval: 6.0 * 3600.0,
            bootstrap_p: 0.1,
            faults: None,
            beta: None,
        }
    }
}

/// What happened in one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Members of the selected VO (empty when no VO formed).
    pub members: Vec<usize>,
    /// Mean hidden reliability of the members (the learning signal —
    /// the mechanism never observes this directly).
    pub mean_reliability: f64,
    /// Whether every member delivered (program succeeded).
    pub delivered: bool,
    /// Members that failed to deliver this round.
    pub failed_members: Vec<usize>,
    /// Payoff share the members would earn (0 when no VO or failed).
    pub payoff_share: f64,
    /// Total trust mass in the ledger-derived graph at formation time.
    pub trust_mass: f64,
    /// Fault events scheduled against this round's VO (0 when fault
    /// injection is off).
    pub fault_events: usize,
    /// Fault-recovery episodes execution went through.
    pub recoveries: usize,
    /// Whether execution abandoned the VO (an unrecoverable fault).
    pub abandoned: bool,
}

/// Run a dynamic simulation under the given mechanism.
///
/// Returns one record per round. Determinism: everything is drawn
/// from `rng`, so a seeded RNG reproduces the run exactly.
pub fn simulate<R: Rng + ?Sized>(
    cfg: &DynamicConfig,
    mechanism: Mechanism,
    rng: &mut R,
) -> Result<Vec<RoundRecord>> {
    let m = cfg.table.gsps;
    assert_eq!(
        cfg.reliabilities.len(),
        m,
        "one reliability per GSP ({} GSPs, {} reliabilities)",
        m,
        cfg.reliabilities.len()
    );
    let generator = ScenarioGenerator::new(cfg.table.clone());
    let mut ledger = InteractionLedger::new(m);
    let mut beta_ledger = cfg.beta.as_ref().map(|bd| BetaLedger::new(m, bd.lambda));

    // Bootstrap prior: sparse positive history, ER-style. The Beta
    // ledger reuses the *same* draws (one weight-1 success per seeded
    // pair), so enabling it changes no RNG stream.
    for i in 0..m {
        for j in 0..m {
            if i != j && rng.gen::<f64>() < cfg.bootstrap_p {
                ledger.record(i, j, 0.0, Outcome::Delivered);
                if let Some(bl) = &mut beta_ledger {
                    bl.observe_weighted(i, j, 1.0, true)
                        .map_err(|e| SimError::Core(e.to_string()))?;
                }
            }
        }
    }

    let mut records = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        let now = (round as f64 + 1.0) * cfg.round_interval;
        // Whitewashers shed their identity before the round forms:
        // every Beta edge touching them (earned distrust included)
        // reverts to the prior.
        if let (Some(bd), Some(bl)) = (&cfg.beta, &mut beta_ledger) {
            for &attacker in &bd.attackers {
                if bd.whitewashes_at(attacker, round) {
                    bl.forget(attacker).map_err(|e| SimError::Core(e.to_string()))?;
                }
            }
        }
        let trust = match &beta_ledger {
            Some(bl) => bl.trust_graph(),
            None => cfg.decay.trust_at(&ledger, now),
        };
        let trust_mass = (0..m).map(|i| trust.out_trust_sum(i)).sum();

        // Fresh economics each round (new program, new prices), the
        // evolving part is the trust graph.
        let base = generator.scenario(cfg.tasks, rng)?;
        let scenario = FormationScenario::new(base.gsps().to_vec(), trust, base.instance().clone())
            .map_err(|e| SimError::Core(e.to_string()))?;

        let outcome = mechanism.run(&scenario, rng)?;
        let record = match outcome.selected {
            Some(vo) => {
                let mean_reliability =
                    vo.members.iter().map(|&g| cfg.reliabilities[g]).sum::<f64>()
                        / vo.members.len() as f64;
                // The program executes: members deliver or fail.
                // Oscillating defectors override their configured
                // reliability by phase; the draw count is unchanged.
                let mut failed = Vec::new();
                for &g in &vo.members {
                    let reliability = match &cfg.beta {
                        Some(bd) => bd.effective_reliability(g, round, cfg.reliabilities[g]),
                        None => cfg.reliabilities[g],
                    };
                    if rng.gen::<f64>() >= reliability {
                        failed.push(g);
                    }
                }
                // Injected faults: run the VO against a seeded plan
                // and recover; members that execution had to evict
                // count as failures in the other members' eyes.
                let (fault_events, recoveries, abandoned, exec_payoff) = match &cfg.faults {
                    Some(model) => {
                        let plan = model.plan(&vo.members, rng);
                        let report = mechanism
                            .execute(&scenario, &vo, &plan)
                            .map_err(|e| SimError::Core(e.to_string()))?;
                        for &g in &vo.members {
                            if !report.final_members.contains(&g) && !failed.contains(&g) {
                                failed.push(g);
                            }
                        }
                        let abandoned = !report.completed();
                        (plan.len(), report.recoveries.len(), abandoned, report.final_payoff_share)
                    }
                    None => (0, 0, false, vo.payoff_share),
                };
                // Every member observes every other member. In beta
                // mode the observations travel as execution receipts:
                // one receipt per subject, witnessed by the co-members
                // whose report matches the truthful outcome. Liars
                // (badmouth-ring raters) cannot forge a receipt's
                // signed content, so their reports land as plain
                // subjective ratings on their own edges instead.
                match (&cfg.beta, &mut beta_ledger) {
                    (Some(bd), Some(bl)) => {
                        let reward = exec_payoff.max(0.0);
                        for &g in &vo.members {
                            let truthful = !failed.contains(&g);
                            let mut witnesses = Vec::new();
                            let mut liars = Vec::new();
                            for &w in &vo.members {
                                if w == g {
                                    continue;
                                }
                                if bd.reported_outcome(w, g, truthful) == truthful {
                                    witnesses.push(w);
                                } else {
                                    liars.push(w);
                                }
                            }
                            if !witnesses.is_empty() {
                                let receipt =
                                    ExecutionReceipt::new(round, g, truthful, reward, witnesses);
                                receipt.fold_into(bl).map_err(|e| SimError::Core(e.to_string()))?;
                            }
                            for w in liars {
                                bl.observe(w, g, reward, !truthful)
                                    .map_err(|e| SimError::Core(e.to_string()))?;
                            }
                        }
                    }
                    _ => {
                        for &rater in &vo.members {
                            for &ratee in &vo.members {
                                if rater != ratee {
                                    let outcome = if failed.contains(&ratee) {
                                        Outcome::Failed
                                    } else {
                                        Outcome::Delivered
                                    };
                                    ledger.record(rater, ratee, now, outcome);
                                }
                            }
                        }
                    }
                }
                let delivered = failed.is_empty() && !abandoned;
                RoundRecord {
                    round,
                    mean_reliability,
                    delivered,
                    payoff_share: if delivered { exec_payoff } else { 0.0 },
                    failed_members: failed,
                    members: vo.members,
                    trust_mass,
                    fault_events,
                    recoveries,
                    abandoned,
                }
            }
            None => RoundRecord {
                round,
                members: Vec::new(),
                mean_reliability: 0.0,
                delivered: false,
                failed_members: Vec::new(),
                payoff_share: 0.0,
                trust_mass,
                fault_events: 0,
                recoveries: 0,
                abandoned: false,
            },
        };
        records.push(record);
    }
    Ok(records)
}

/// Mean member reliability over a window of rounds (skipping rounds
/// where no VO formed).
pub fn mean_reliability(records: &[RoundRecord]) -> f64 {
    let formed: Vec<f64> =
        records.iter().filter(|r| !r.members.is_empty()).map(|r| r.mean_reliability).collect();
    if formed.is_empty() {
        0.0
    } else {
        formed.iter().sum::<f64>() / formed.len() as f64
    }
}

/// Fraction of rounds whose program was fully delivered.
pub fn success_rate(records: &[RoundRecord]) -> f64 {
    if records.is_empty() {
        0.0
    } else {
        records.iter().filter(|r| r.delivered).count() as f64 / records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvo_core::mechanism::FormationConfig;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    fn cfg(rounds: usize) -> DynamicConfig {
        let table = TableI {
            gsps: 6,
            task_sizes: vec![18],
            trace_jobs: 1_500,
            deadline_factor_range: (4.0, 16.0),
            ..TableI::default()
        };
        // GSPs 4 and 5 are chronically unreliable.
        let reliabilities = vec![0.98, 0.95, 0.95, 0.9, 0.35, 0.25];
        DynamicConfig::new(table, rounds, 18, reliabilities)
    }

    #[test]
    fn records_one_per_round_and_ledger_grows() {
        let c = cfg(6);
        let mut rng = TestRng::seed_from_u64(1);
        let records = simulate(&c, Mechanism::tvof(FormationConfig::default()), &mut rng).unwrap();
        assert_eq!(records.len(), 6);
        for r in &records {
            assert!(r.mean_reliability <= 1.0);
            assert!(r.trust_mass >= 0.0);
        }
        // trust mass grows as interactions accumulate (no decay)
        assert!(
            records.last().unwrap().trust_mass > records[0].trust_mass,
            "ledger evidence must accumulate"
        );
    }

    #[test]
    fn tvof_learns_to_avoid_unreliable_gsps() {
        // Average the learning signal across seeds: late-window mean
        // member reliability under TVOF must beat the early window.
        let c = cfg(14);
        let mut early_sum = 0.0;
        let mut late_sum = 0.0;
        let seeds = 6;
        for seed in 0..seeds {
            let mut rng = TestRng::seed_from_u64(seed);
            let records =
                simulate(&c, Mechanism::tvof(FormationConfig::default()), &mut rng).unwrap();
            early_sum += mean_reliability(&records[..4]);
            late_sum += mean_reliability(&records[10..]);
        }
        assert!(
            late_sum >= early_sum - 0.02 * seeds as f64,
            "TVOF failed to learn: early {early_sum} vs late {late_sum}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let c = cfg(4);
        let run = |seed| {
            let mut rng = TestRng::seed_from_u64(seed);
            simulate(&c, Mechanism::tvof(FormationConfig::default()), &mut rng).unwrap()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn helpers_on_empty_and_failed_rounds() {
        assert_eq!(mean_reliability(&[]), 0.0);
        assert_eq!(success_rate(&[]), 0.0);
        let r = RoundRecord {
            round: 0,
            members: vec![],
            mean_reliability: 0.0,
            delivered: false,
            failed_members: vec![],
            payoff_share: 0.0,
            trust_mass: 0.0,
            fault_events: 0,
            recoveries: 0,
            abandoned: false,
        };
        assert_eq!(mean_reliability(std::slice::from_ref(&r)), 0.0);
        assert_eq!(success_rate(&[r]), 0.0);
    }

    #[test]
    fn fault_injection_is_deterministic_and_produces_telemetry() {
        let mut c = cfg(6);
        c.faults = Some(FaultModel::with_rate(0.3, 3));
        let run = |seed| {
            let mut rng = TestRng::seed_from_u64(seed);
            simulate(&c, Mechanism::tvof(FormationConfig::default()), &mut rng).unwrap()
        };
        let a = run(5);
        assert_eq!(a, run(5));
        assert!(
            a.iter().any(|r| r.fault_events > 0),
            "rate 0.3 over 3 rounds × several members should schedule at least one fault"
        );
        for r in &a {
            assert!(r.recoveries <= r.fault_events);
            if r.abandoned {
                assert!(!r.delivered, "abandoned programs are not delivered");
                assert_eq!(r.payoff_share, 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one reliability per GSP")]
    fn reliability_length_mismatch_panics() {
        let mut c = cfg(2);
        c.reliabilities.pop();
        let mut rng = TestRng::seed_from_u64(0);
        let _ = simulate(&c, Mechanism::tvof(FormationConfig::default()), &mut rng);
    }
}
