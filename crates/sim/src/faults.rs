//! Seeded fault-plan generation for VO execution experiments.
//!
//! [`FaultModel`] turns per-round, per-member fault probabilities into
//! a concrete [`FaultPlan`] with one pass over a seeded RNG. Draws are
//! made **round-major, member-order** — one uniform per (round,
//! member) pair plus extras only when a fault fires — so the same
//! seed, member list and model always reproduce the same plan,
//! regardless of what execution later does with it.

use gridvo_core::{FaultEvent, FaultKind, FaultPlan};
use rand::Rng;

/// Per-round fault probabilities for plan generation.
///
/// For each execution round and each (initial) VO member, at most one
/// fault is drawn: crash with probability `crash_rate`, else slowdown
/// with probability `slowdown_rate`, else a silent task drop with
/// probability `drop_rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Execution rounds to draw faults for.
    pub rounds: usize,
    /// Per-member, per-round crash probability.
    pub crash_rate: f64,
    /// Per-member, per-round slowdown probability (tried when no crash
    /// fired).
    pub slowdown_rate: f64,
    /// Uniform range the slowdown factor is drawn from.
    pub slowdown_range: (f64, f64),
    /// Per-member, per-round silent-drop probability (tried when
    /// neither crash nor slowdown fired).
    pub drop_rate: f64,
    /// Largest number of tasks a silent drop loses (drawn uniformly
    /// from `1..=max_dropped_tasks`).
    pub max_dropped_tasks: usize,
}

impl FaultModel {
    /// The fault-free model: every plan it generates is empty.
    pub fn none() -> Self {
        FaultModel {
            rounds: 0,
            crash_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown_range: (1.5, 4.0),
            drop_rate: 0.0,
            max_dropped_tasks: 2,
        }
    }

    /// A mixed model with overall per-member, per-round fault
    /// probability `rate`, split 50% crashes, 30% slowdowns (factor
    /// 1.5–4.0) and 20% silent drops (1–2 tasks) — the split used by
    /// the `fault_sweep` benchmark.
    pub fn with_rate(rate: f64, rounds: usize) -> Self {
        FaultModel {
            rounds,
            crash_rate: 0.5 * rate,
            slowdown_rate: 0.3 * rate,
            slowdown_range: (1.5, 4.0),
            drop_rate: 0.2 * rate,
            max_dropped_tasks: 2,
        }
    }

    /// Draw a deterministic fault plan for `members` from `rng`.
    ///
    /// Events are generated round-major and in member order. A member
    /// that crashes stops drawing faults in later rounds (it is gone);
    /// execution independently skips events for evicted members, so
    /// plans stay valid even when recovery evicts someone early.
    pub fn plan<R: Rng + ?Sized>(&self, members: &[usize], rng: &mut R) -> FaultPlan {
        let mut events = Vec::new();
        let mut crashed = vec![false; members.len()];
        for round in 0..self.rounds {
            for (i, &gsp) in members.iter().enumerate() {
                if crashed[i] {
                    continue;
                }
                let u: f64 = rng.gen();
                let kind = if u < self.crash_rate {
                    crashed[i] = true;
                    Some(FaultKind::Crash)
                } else if u < self.crash_rate + self.slowdown_rate {
                    let (lo, hi) = self.slowdown_range;
                    Some(FaultKind::Slowdown { factor: rng.gen_range(lo..hi) })
                } else if u < self.crash_rate + self.slowdown_rate + self.drop_rate {
                    Some(FaultKind::SilentDrop { tasks: rng.gen_range(1..=self.max_dropped_tasks) })
                } else {
                    None
                };
                if let Some(kind) = kind {
                    events.push(FaultEvent { round, gsp, kind });
                }
            }
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::seeded_rng;

    #[test]
    fn none_model_generates_empty_plans() {
        let mut rng = seeded_rng(0xFA, 1);
        let plan = FaultModel::none().plan(&[0, 1, 2], &mut rng);
        assert!(plan.is_empty());
        // and consumes no randomness beyond the per-slot uniforms
        let mut a = seeded_rng(0xFA, 2);
        let mut b = seeded_rng(0xFA, 2);
        FaultModel::none().plan(&[0, 1, 2], &mut a);
        let x: f64 = a.gen();
        let _ = FaultModel { rounds: 0, ..FaultModel::with_rate(1.0, 0) }.plan(&[0, 1, 2], &mut b);
        let y: f64 = b.gen();
        assert_eq!(x.to_bits(), y.to_bits());
    }

    #[test]
    fn same_seed_same_plan() {
        let model = FaultModel::with_rate(0.4, 5);
        let members: Vec<usize> = vec![3, 1, 4, 5, 9, 11];
        let mut a = seeded_rng(0xFB, 17);
        let mut b = seeded_rng(0xFB, 17);
        assert_eq!(model.plan(&members, &mut a), model.plan(&members, &mut b));
    }

    #[test]
    fn crashed_members_stop_faulting() {
        let model = FaultModel { rounds: 50, ..FaultModel::with_rate(1.0, 50) };
        // rate 1.0 → 0.5 crash: everyone crashes quickly; afterwards
        // no member may appear again.
        let mut rng = seeded_rng(0xFC, 3);
        let plan = model.plan(&[0, 1, 2, 3], &mut rng);
        for gsp in 0..4usize {
            let crash_round = plan
                .events()
                .iter()
                .find(|e| e.gsp == gsp && e.kind == FaultKind::Crash)
                .map(|e| e.round);
            if let Some(r) = crash_round {
                assert!(
                    plan.events().iter().all(|e| e.gsp != gsp || e.round <= r),
                    "gsp {gsp} faults after crashing in round {r}"
                );
            }
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let model = FaultModel::with_rate(0.2, 10);
        let mut rng = seeded_rng(0xFD, 11);
        let mut total = 0usize;
        let mut slots = 0usize;
        for _ in 0..200 {
            let plan = model.plan(&[0, 1, 2, 3, 4], &mut rng);
            total += plan.len();
            // crashing early removes later slots; just bound loosely
            slots += 10 * 5;
        }
        let rate = total as f64 / slots as f64;
        assert!(rate > 0.05 && rate < 0.25, "empirical fault rate {rate}");
    }
}
