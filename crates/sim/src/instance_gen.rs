//! Full scenario generation per §IV-A.
//!
//! Pipeline: synthetic Atlas trace → program of the requested size →
//! GSP speeds `4.91 × U[16, 128]` → consistent time matrix →
//! workload-monotone Braun cost matrix → deadline
//! `U[0.3, 2.0] × Runtime × n/1000` and payment
//! `U[0.2, 0.4] × max_c × n` → Erdős–Rényi trust graph (`p = 0.1`) —
//! redrawing deadline/payment until the grand coalition's IP admits a
//! feasible solution, exactly as the paper calibrates ("the values for
//! deadline and payment were generated in such a way that there exists
//! a feasible solution in each experiment").

use crate::braun;
use crate::config::TableI;
use crate::{Result, SimError};
use gridvo_core::{FormationScenario, Gsp};
use gridvo_solver::heuristics;
use gridvo_solver::AssignmentInstance;
use gridvo_trust::generators;
use gridvo_workload::atlas::AtlasGenerator;
use gridvo_workload::program::{Program, ProgramExtractor};
use gridvo_workload::SwfTrace;
use rand::Rng;

/// Generates experiment scenarios from a Table-I configuration.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    cfg: TableI,
    trace: Option<SwfTrace>,
}

impl ScenarioGenerator {
    /// A generator that synthesizes its own Atlas-like trace on first
    /// use per call (deterministic under the caller's RNG).
    pub fn new(cfg: TableI) -> Self {
        ScenarioGenerator { cfg, trace: None }
    }

    /// A generator driven by an externally supplied trace — pass the
    /// real `LLNL-Atlas-2006-2.1-cln.swf` here for a trace-faithful
    /// rerun.
    pub fn with_trace(cfg: TableI, trace: SwfTrace) -> Self {
        ScenarioGenerator { cfg, trace: Some(trace) }
    }

    /// The configuration.
    pub fn config(&self) -> &TableI {
        &self.cfg
    }

    /// Draw a program with exactly `tasks` tasks.
    pub fn program<R: Rng + ?Sized>(&self, tasks: usize, rng: &mut R) -> Result<Program> {
        let extractor = ProgramExtractor {
            min_runtime: self.cfg.min_runtime,
            gflops_per_proc: self.cfg.gflops_per_proc,
            ..Default::default()
        };
        let owned;
        let trace = match &self.trace {
            Some(t) => t,
            None => {
                owned = AtlasGenerator::default().generate(rng, self.cfg.trace_jobs);
                &owned
            }
        };
        extractor.extract_with_size(trace, tasks, rng).ok_or(SimError::NoQualifyingJob)
    }

    /// Draw GSP speeds `gflops_per_proc × U[lo, hi]`.
    pub fn speeds<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let (lo, hi) = self.cfg.speed_multiplier_range;
        (0..self.cfg.gsps).map(|_| self.cfg.gflops_per_proc * rng.gen_range(lo..=hi)).collect()
    }

    /// Build a full scenario for a program of `tasks` tasks,
    /// recalibrating deadline/payment until the grand coalition is
    /// feasible.
    pub fn scenario<R: Rng + ?Sized>(
        &self,
        tasks: usize,
        rng: &mut R,
    ) -> Result<FormationScenario> {
        let program = self.program(tasks, rng)?;
        self.scenario_for_program(&program, rng)
    }

    /// Build a scenario for an already-extracted program.
    pub fn scenario_for_program<R: Rng + ?Sized>(
        &self,
        program: &Program,
        rng: &mut R,
    ) -> Result<FormationScenario> {
        let n = program.tasks();
        let m = self.cfg.gsps;
        let speeds = self.speeds(rng);
        let time = braun::time_matrix(program.workloads(), &speeds);
        let mut cost = braun::braun_cost_matrix(rng, n, m, self.cfg.phi_b, self.cfg.phi_r);
        braun::enforce_workload_monotonicity(&mut cost, program.workloads(), m);

        let (dlo, dhi) = self.cfg.deadline_factor_range;
        let (plo, phi) = self.cfg.payment_factor_range;
        let max_c = self.cfg.max_cost();

        // Calibration loop: redraw the deadline/payment factors until
        // the grand coalition admits a feasible assignment. A cheap
        // heuristic feasibility probe keeps this fast; the probe is
        // sound (any heuristic-feasible instance is feasible).
        let mut attempt = 0;
        loop {
            attempt += 1;
            if attempt > self.cfg.calibration_attempts {
                return Err(SimError::CalibrationFailed {
                    tasks: n,
                    attempts: self.cfg.calibration_attempts,
                });
            }
            // Widen the deadline/payment upward after repeated
            // failures so calibration terminates even on sizes where
            // the paper's n/1000 deadline scaling is too tight (the
            // paper only uses n ≥ 256; tiny test programs need the
            // stretch). Paper-faithful draws happen at stretch = 1.
            let stretch = 2f64.powf(((attempt - 1) / 10) as f64);
            let deadline =
                rng.gen_range(dlo..=dhi) * stretch * program.base_runtime * n as f64 / 1000.0;
            let payment = rng.gen_range(plo..=phi) * stretch * max_c * n as f64;
            let Ok(instance) =
                AssignmentInstance::new(n, m, cost.clone(), time.clone(), deadline, payment)
            else {
                continue;
            };
            if heuristics::seed_incumbent(&instance).is_none() {
                continue;
            }
            let gsps: Vec<Gsp> = speeds.iter().enumerate().map(|(i, &s)| Gsp::new(i, s)).collect();
            let (wlo, whi) = self.cfg.trust_weight_range;
            let trust = generators::erdos_renyi(rng, m, self.cfg.trust_p, wlo..whi);
            return FormationScenario::new(gsps, trust, instance)
                .map_err(|e| SimError::Core(e.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    fn generator() -> ScenarioGenerator {
        ScenarioGenerator::new(TableI::small())
    }

    #[test]
    fn scenario_has_requested_shape() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = generator().scenario(32, &mut rng).unwrap();
        assert_eq!(s.task_count(), 32);
        assert_eq!(s.gsp_count(), 6);
    }

    #[test]
    fn grand_coalition_is_feasible_after_calibration() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = generator().scenario(24, &mut rng).unwrap();
        let inst = s.instance();
        assert!(gridvo_solver::heuristics::seed_incumbent(inst).is_some());
    }

    #[test]
    fn speeds_inside_table_i_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let gen = generator();
        for s in gen.speeds(&mut rng) {
            assert!((4.91 * 16.0 - 1e-9..=4.91 * 128.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn cost_matrix_obeys_table_i_bounds() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = generator().scenario(24, &mut rng).unwrap();
        let inst = s.instance();
        for t in 0..inst.tasks() {
            for g in 0..inst.gsps() {
                let c = inst.cost(t, g);
                assert!((1.0..=1000.0).contains(&c), "cost {c} outside [1, φ_b·φ_r]");
            }
        }
    }

    #[test]
    fn time_matrix_consistent_and_cost_monotone() {
        let mut rng = TestRng::seed_from_u64(5);
        let gen = generator();
        let program = gen.program(20, &mut rng).unwrap();
        let s = gen.scenario_for_program(&program, &mut rng).unwrap();
        let inst = s.instance();
        let time: Vec<f64> = (0..inst.tasks())
            .flat_map(|t| (0..inst.gsps()).map(move |g| (t, g)))
            .map(|(t, g)| inst.time(t, g))
            .collect();
        assert!(crate::braun::is_consistent(&time, inst.tasks(), inst.gsps()));
        let cost: Vec<f64> = (0..inst.tasks())
            .flat_map(|t| (0..inst.gsps()).map(move |g| (t, g)))
            .map(|(t, g)| inst.cost(t, g))
            .collect();
        assert!(crate::braun::is_workload_monotone(&cost, program.workloads(), inst.gsps()));
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = generator();
        let s1 = gen.scenario(16, &mut TestRng::seed_from_u64(9)).unwrap();
        let s2 = gen.scenario(16, &mut TestRng::seed_from_u64(9)).unwrap();
        assert_eq!(s1.instance(), s2.instance());
        assert_eq!(s1.trust(), s2.trust());
    }

    #[test]
    fn external_trace_is_used() {
        let mut rng = TestRng::seed_from_u64(10);
        let trace = AtlasGenerator::default().generate(&mut rng, 3000);
        let gen = ScenarioGenerator::with_trace(TableI::small(), trace);
        let p = gen.program(16, &mut rng).unwrap();
        assert_eq!(p.tasks(), 16);
    }
}
