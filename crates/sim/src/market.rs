//! Trace-driven multi-application market simulation.
//!
//! Closes the loop on the concurrent-market subsystem: real (or
//! synthetic) SWF traces drive arrival processes for several
//! applications that contend for one shared GSP pool. Each completed
//! trace job becomes a formation request; a formed VO holds its
//! coalition under a lease for the job's runtime (scaled by
//! [`MarketConfig::time_scale`]), and later arrivals can only form
//! over the uncommitted leftovers — the same admission policy the
//! daemon applies, replayed here as a deterministic discrete-event
//! loop so contention effects (shed rate, lease waits,
//! hedonic-stability violations across concurrently-live VOs) can be
//! measured without a server.
//!
//! Time in this module is trace time (seconds since trace start),
//! never wall-clock, so runs are exactly reproducible.

use std::collections::VecDeque;

use gridvo_core::mechanism::{FormationConfig, Mechanism};
use gridvo_core::{FormationScenario, Gsp};
use gridvo_market::{stability, CommittedVo, LeaseTable};
use gridvo_workload::swf::{SwfJob, SwfStatus, SwfTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::instance_gen::ScenarioGenerator;
use crate::{Result, SimError, TableI};

/// Knobs for one market simulation.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Instance-generation parameters for the shared pool.
    pub table: TableI,
    /// Program size (#tasks) of every formation request.
    pub tasks: usize,
    /// Concurrent applications; trace job `i` belongs to `app-{i mod apps}`.
    pub apps: usize,
    /// Seed for pool/scenario generation.
    pub scenario_seed: u64,
    /// Seed mixed into each job's formation RNG.
    pub seed: u64,
    /// Pending-retry slots per application; beyond them jobs shed.
    pub app_queue: usize,
    /// Jobs shed while fewer than this many GSPs are uncommitted.
    pub min_free: usize,
    /// Lease hold time = `task_runtime() * time_scale` seconds.
    pub time_scale: f64,
}

impl MarketConfig {
    /// A small, fast default built on [`TableI::small`].
    pub fn small() -> Self {
        MarketConfig {
            table: TableI::small(),
            tasks: 12,
            apps: 3,
            scenario_seed: 7,
            seed: 11,
            app_queue: 4,
            min_free: 1,
            time_scale: 1.0,
        }
    }
}

/// Per-application tallies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Application name (`app-0`, `app-1`, …).
    pub app: String,
    /// Jobs that formed a VO (and held a lease).
    pub formed: u64,
    /// Jobs shed (pool exhausted past the retry queue, queue full, or
    /// infeasible even on the idle pool).
    pub shed: u64,
    /// Mean seconds formed jobs waited between arrival and formation.
    pub mean_wait_s: f64,
}

/// What one market simulation measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketReport {
    /// Eligible (completed) trace jobs fed in.
    pub jobs: u64,
    /// Jobs that formed a VO.
    pub formed: u64,
    /// Jobs shed.
    pub shed: u64,
    /// Mean lease wait over formed jobs, seconds of trace time.
    pub mean_wait_s: f64,
    /// Most leases live at once.
    pub max_live_leases: usize,
    /// Hedonic-stability violations summed over every acquire instant:
    /// members of a live VO that could defect to a concurrently-live
    /// richer coalition (see [`gridvo_market::stability`]).
    pub stability_violations: u64,
    /// Per-application breakdown, app-name order.
    pub per_app: Vec<AppOutcome>,
}

/// A deterministic synthetic SWF trace (Poisson-ish arrivals, mixed
/// outcomes) for driving [`run_market`] without an archive file.
pub fn synthetic_trace(jobs: usize, seed: u64) -> SwfTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = SwfTrace {
        header: vec![
            ("Version".to_string(), "2.1".to_string()),
            ("Computer".to_string(), "gridvo-synthetic".to_string()),
            ("MaxJobs".to_string(), jobs.to_string()),
        ],
        jobs: Vec::with_capacity(jobs),
    };
    let mut t = 0.0;
    for i in 0..jobs {
        t += rng.gen_range(30.0..900.0);
        let run = rng.gen_range(1_800.0..18_000.0);
        let procs = rng.gen_range(4..64);
        // ~1 in 6 jobs fails and is filtered out by `completed()`.
        let status =
            if rng.gen_range(0..6) == 0 { SwfStatus::Failed } else { SwfStatus::Completed };
        trace.jobs.push(SwfJob {
            job_id: i as i64 + 1,
            submit_time: (t as u64) as f64,
            wait_time: 0.0,
            run_time: (run as u64) as f64,
            allocated_procs: procs,
            avg_cpu_time: ((run * 0.9) as u64) as f64,
            used_memory: -1.0,
            requested_procs: procs,
            requested_time: ((run * 1.2) as u64) as f64,
            requested_memory: -1.0,
            status,
            user_id: rng.gen_range(1..8),
            group_id: 1,
            executable: -1,
            queue: 1,
            partition: -1,
            preceding_job: -1,
            think_time: -1.0,
        });
    }
    trace
}

/// One job flowing through the market.
struct Arrival {
    idx: usize,
    app: usize,
    submit: f64,
    hold: f64,
}

/// Jobs waiting for the pool to free up.
struct PendingJob {
    arrival: Arrival,
}

/// A lease scheduled to end.
struct LiveVo {
    lease: u64,
    ends: f64,
    committed: CommittedVo,
}

/// Restrict `full` to the free sub-pool, renumbering survivors
/// `0..k`. Mirrors the daemon's `free_scenario` (gridvo-service
/// depends on this crate, so the helper cannot be shared).
fn sub_scenario(full: &FormationScenario, free: &[usize]) -> Option<FormationScenario> {
    let inst = full.instance_for(free)?;
    let trust = full.trust_for(free).ok()?;
    let gsps: Vec<Gsp> =
        free.iter().enumerate().map(|(k, &g)| Gsp::new(k, full.gsps()[g].speed_gflops)).collect();
    FormationScenario::new(gsps, trust, inst).ok()
}

/// Run the discrete-event market over `trace`'s completed jobs.
pub fn run_market(trace: &SwfTrace, cfg: &MarketConfig) -> Result<MarketReport> {
    let apps = cfg.apps.max(1);
    let mut rng = StdRng::seed_from_u64(cfg.scenario_seed);
    let gen = ScenarioGenerator::new(cfg.table.clone());
    let scenario = gen.scenario(cfg.tasks, &mut rng)?;
    let mechanism = Mechanism::tvof(FormationConfig::default());

    let mut arrivals: Vec<Arrival> = trace
        .completed()
        .enumerate()
        .map(|(idx, job)| Arrival {
            idx,
            app: idx % apps,
            submit: job.submit_time,
            hold: (job.task_runtime() * cfg.time_scale).max(1.0),
        })
        .collect();
    arrivals.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.idx.cmp(&b.idx)));

    let jobs = arrivals.len() as u64;
    let mut table = LeaseTable::new();
    let mut live: Vec<LiveVo> = Vec::new();
    let mut pending: VecDeque<PendingJob> = VecDeque::new();
    let mut formed = vec![0u64; apps];
    let mut shed = vec![0u64; apps];
    let mut waits: Vec<Vec<f64>> = vec![Vec::new(); apps];
    let mut max_live = 0usize;
    let mut violations = 0u64;

    // One attempt: form over the free sub-pool at time `now`.
    // Ok(Some(..)) = formed (lease acquired), Ok(None) = blocked by
    // contention (retry later), Err(()) = infeasible on the idle pool
    // (never will form — shed).
    let attempt = |now: f64,
                   job: &Arrival,
                   table: &mut LeaseTable,
                   live: &mut Vec<LiveVo>|
     -> std::result::Result<Option<()>, ()> {
        let free = table.free_members(scenario.gsp_count());
        if free.len() < cfg.min_free.max(1) {
            return Ok(None);
        }
        let contended = free.len() < scenario.gsp_count();
        let sub;
        let view: &FormationScenario = if contended {
            match sub_scenario(&scenario, &free) {
                Some(s) => {
                    sub = s;
                    &sub
                }
                None => return Ok(None),
            }
        } else {
            &scenario
        };
        let mut job_rng = StdRng::seed_from_u64(cfg.seed ^ (job.idx as u64).wrapping_mul(0x9e37));
        let mut outcome = mechanism.run(view, &mut job_rng).map_err(|e| {
            // A mechanism error is a bug, not contention; surface it
            // by treating the job as infeasible.
            debug_assert!(false, "mechanism error in market sim: {e}");
        })?;
        if contended {
            outcome.map_members(&free);
        }
        let Some(vo) = outcome.selected else {
            // The idle pool cannot host this program at all.
            return if contended { Ok(None) } else { Err(()) };
        };
        let app_name = format!("app-{}", job.app);
        let lease =
            table.acquire(&app_name, &vo.members, 0).expect("free-sub-pool members cannot be held");
        live.push(LiveVo {
            lease,
            ends: now + job.hold,
            committed: CommittedVo {
                app: app_name,
                members: vo.members.clone(),
                payoff_share: vo.payoff_share,
            },
        });
        Ok(Some(()))
    };

    // Release every lease ending at or before `now`, retrying pending
    // jobs (FIFO) after each batch of releases.
    macro_rules! settle {
        ($now:expr) => {{
            loop {
                let due: Vec<usize> = {
                    let mut idx: Vec<usize> =
                        (0..live.len()).filter(|&i| live[i].ends <= $now).collect();
                    idx.sort_by(|&a, &b| live[a].ends.total_cmp(&live[b].ends));
                    idx
                };
                if due.is_empty() {
                    break;
                }
                let release_at = live[due[0]].ends;
                // Release everything ending at this instant, then retry.
                let batch: Vec<usize> =
                    due.iter().copied().filter(|&i| live[i].ends == release_at).collect();
                for &i in batch.iter().rev() {
                    let gone = live.swap_remove(i);
                    table.release(gone.lease);
                }
                let mut still = VecDeque::new();
                while let Some(p) = pending.pop_front() {
                    match attempt(release_at, &p.arrival, &mut table, &mut live) {
                        Ok(Some(())) => {
                            formed[p.arrival.app] += 1;
                            waits[p.arrival.app].push(release_at - p.arrival.submit);
                            max_live = max_live.max(live.len());
                            violations += count_violations(&live);
                        }
                        Ok(None) => still.push_back(p),
                        Err(()) => shed[p.arrival.app] += 1,
                    }
                }
                pending = still;
            }
        }};
    }

    let all = std::mem::take(&mut arrivals);
    for job in all {
        settle!(job.submit);
        let app = job.app;
        match attempt(job.submit, &job, &mut table, &mut live) {
            Ok(Some(())) => {
                formed[app] += 1;
                waits[app].push(0.0);
                max_live = max_live.max(live.len());
                violations += count_violations(&live);
            }
            Ok(None) => {
                let depth = pending.iter().filter(|p| p.arrival.app == app).count();
                if depth < cfg.app_queue.max(1) {
                    pending.push_back(PendingJob { arrival: job });
                } else {
                    shed[app] += 1;
                }
            }
            Err(()) => shed[app] += 1,
        }
    }
    // Drain: let every live lease expire so queued jobs get their shot.
    settle!(f64::INFINITY);
    // Anything still pending can never form (e.g. min_free > pool).
    for p in pending {
        shed[p.arrival.app] += 1;
    }

    if jobs == 0 {
        return Err(SimError::NoQualifyingJob);
    }
    let mean = |w: &[f64]| if w.is_empty() { 0.0 } else { w.iter().sum::<f64>() / w.len() as f64 };
    let all_waits: Vec<f64> = waits.iter().flatten().copied().collect();
    Ok(MarketReport {
        jobs,
        formed: formed.iter().sum(),
        shed: shed.iter().sum(),
        mean_wait_s: mean(&all_waits),
        max_live_leases: max_live,
        stability_violations: violations,
        per_app: (0..apps)
            .map(|a| AppOutcome {
                app: format!("app-{a}"),
                formed: formed[a],
                shed: shed[a],
                mean_wait_s: mean(&waits[a]),
            })
            .collect(),
    })
}

/// Stability violations among the currently-live coalitions.
fn count_violations(live: &[LiveVo]) -> u64 {
    let committed: Vec<CommittedVo> = live.iter().map(|l| l.committed.clone()).collect();
    stability::violations(&committed).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MarketConfig {
        MarketConfig { table: TableI { gsps: 4, ..TableI::small() }, ..MarketConfig::small() }
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_monotone() {
        let a = synthetic_trace(40, 3);
        let b = synthetic_trace(40, 3);
        assert_eq!(a, b);
        assert!(a.jobs.windows(2).all(|w| w[0].submit_time <= w[1].submit_time));
        assert!(a.completed().count() > 0);
    }

    #[test]
    fn market_report_is_deterministic_and_conserves_jobs() {
        let trace = synthetic_trace(24, 5);
        let r1 = run_market(&trace, &cfg()).unwrap();
        let r2 = run_market(&trace, &cfg()).unwrap();
        assert_eq!(r1, r2, "same trace + config must reproduce the report");
        assert_eq!(r1.formed + r1.shed, r1.jobs, "every job either forms or sheds");
        assert_eq!(r1.jobs, trace.completed().count() as u64);
        let per_app_formed: u64 = r1.per_app.iter().map(|a| a.formed).sum();
        assert_eq!(per_app_formed, r1.formed);
    }

    #[test]
    fn strict_min_free_serializes_leases_and_kills_violations() {
        // min_free = pool size: a second lease can never coexist with
        // a first, so at most one VO is live at a time — and a single
        // live coalition has nothing to defect to.
        let mut c = cfg();
        c.min_free = c.table.gsps;
        let trace = synthetic_trace(16, 9);
        let r = run_market(&trace, &c).unwrap();
        assert!(r.max_live_leases <= 1);
        assert_eq!(r.stability_violations, 0);
        assert!(r.formed > 0, "jobs still form once the pool drains");
    }

    #[test]
    fn contention_scales_with_app_count() {
        // More apps on the same trace cannot reduce total demand; the
        // report stays internally consistent at every app count.
        let trace = synthetic_trace(20, 13);
        for apps in [1, 2, 4] {
            let mut c = cfg();
            c.apps = apps;
            let r = run_market(&trace, &c).unwrap();
            assert_eq!(r.per_app.len(), apps);
            assert_eq!(r.formed + r.shed, r.jobs);
        }
    }
}
