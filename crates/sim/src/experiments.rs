//! One experiment definition per paper figure.
//!
//! Each function reproduces the *procedure* behind a figure; rendering
//! (CSV/JSON) lives in [`crate::report`], and the runnable binaries in
//! `gridvo-bench` glue the two together.

use crate::config::TableI;
use crate::instance_gen::ScenarioGenerator;
use crate::runner::{run_seeds, Aggregate};
use crate::{Result, SimError};
use gridvo_core::mechanism::{FormationConfig, Mechanism, SolverChoice};
use gridvo_core::solve_cache::NoCache;
use gridvo_core::{FormationOutcome, FormationScenario};
use gridvo_solver::branch_bound::{BranchBound, Budget};
use gridvo_solver::portfolio::Portfolio;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Mechanism configuration used by all experiments: exact B&B with the
/// configured node budget, paper defaults elsewhere.
pub fn paper_config(cfg: &TableI) -> FormationConfig {
    FormationConfig {
        solver: SolverChoice::Exact(BranchBound {
            max_nodes: cfg.solver_node_budget,
            seed_incumbent: true,
        }),
        ..Default::default()
    }
}

/// Per-seed observations of one (mechanism, scenario) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Payoff share of the selected VO (0 when none).
    pub payoff_share: f64,
    /// Size of the selected VO (0 when none).
    pub vo_size: usize,
    /// Average reputation of the selected VO (0 when none).
    pub avg_reputation: f64,
    /// Wall-clock seconds for the whole mechanism run.
    pub seconds: f64,
    /// Whether a VO was selected at all.
    pub formed: bool,
}

impl RunMetrics {
    fn from_outcome(outcome: &FormationOutcome) -> RunMetrics {
        match &outcome.selected {
            Some(vo) => RunMetrics {
                payoff_share: vo.payoff_share,
                vo_size: vo.size(),
                avg_reputation: vo.avg_reputation,
                seconds: outcome.total_seconds,
                formed: true,
            },
            None => RunMetrics {
                payoff_share: 0.0,
                vo_size: 0,
                avg_reputation: 0.0,
                seconds: outcome.total_seconds,
                formed: false,
            },
        }
    }
}

/// One row of the task-size sweep — the data behind Figs. 1, 2, 3 and 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Program size (#tasks).
    pub tasks: usize,
    /// Fig. 1 — individual payoff of the selected VO.
    pub tvof_payoff: Aggregate,
    /// Fig. 1 baseline.
    pub rvof_payoff: Aggregate,
    /// Fig. 2 — size of the final VO.
    pub tvof_vo_size: Aggregate,
    /// Fig. 2 baseline.
    pub rvof_vo_size: Aggregate,
    /// Fig. 3 — average global reputation of the final VO.
    pub tvof_reputation: Aggregate,
    /// Fig. 3 baseline.
    pub rvof_reputation: Aggregate,
    /// Fig. 9 — mechanism execution time (seconds).
    pub tvof_seconds: Aggregate,
    /// Fig. 9 baseline.
    pub rvof_seconds: Aggregate,
    /// Seeds that produced a VO under both mechanisms.
    pub formed_runs: usize,
}

/// Figs. 1/2/3/9 — sweep program sizes, running TVOF and RVOF on the
/// *same* scenarios, `seeds.len()` scenarios per size.
pub fn task_sweep(cfg: &TableI, seeds: &[u64]) -> Result<Vec<SweepPoint>> {
    let generator = ScenarioGenerator::new(cfg.clone());
    let mech_cfg = paper_config(cfg);
    let mut points = Vec::with_capacity(cfg.task_sizes.len());
    for (size_idx, &tasks) in cfg.task_sizes.iter().enumerate() {
        let results = run_seeds(0xF1965 + size_idx as u64, seeds, |_seed, rng| {
            let scenario = generator.scenario(tasks, rng)?;
            let tvof = Mechanism::tvof(mech_cfg).run(&scenario, rng).map_err(SimError::from)?;
            let rvof = Mechanism::rvof(mech_cfg).run(&scenario, rng).map_err(SimError::from)?;
            Ok::<_, SimError>((RunMetrics::from_outcome(&tvof), RunMetrics::from_outcome(&rvof)))
        });
        let mut tv = Vec::new();
        let mut rv = Vec::new();
        for r in results {
            let (t, v) = r?;
            tv.push(t);
            rv.push(v);
        }
        let formed_runs = tv.iter().zip(rv.iter()).filter(|(a, b)| a.formed && b.formed).count();
        let agg = |xs: &[RunMetrics], f: fn(&RunMetrics) -> f64| {
            Aggregate::of(&xs.iter().filter(|m| m.formed).map(f).collect::<Vec<_>>())
        };
        points.push(SweepPoint {
            tasks,
            tvof_payoff: agg(&tv, |m| m.payoff_share),
            rvof_payoff: agg(&rv, |m| m.payoff_share),
            tvof_vo_size: agg(&tv, |m| m.vo_size as f64),
            rvof_vo_size: agg(&rv, |m| m.vo_size as f64),
            tvof_reputation: agg(&tv, |m| m.avg_reputation),
            rvof_reputation: agg(&rv, |m| m.avg_reputation),
            tvof_seconds: Aggregate::of(&tv.iter().map(|m| m.seconds).collect::<Vec<_>>()),
            rvof_seconds: Aggregate::of(&rv.iter().map(|m| m.seconds).collect::<Vec<_>>()),
            formed_runs,
        });
    }
    Ok(points)
}

/// One row of the incremental-engine benchmark: TVOF on the same
/// scenarios with the warm-start machinery off vs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmColdPoint {
    /// Program size (#tasks).
    pub tasks: usize,
    /// Wall-clock seconds per run, cold (`warm_start: false`).
    pub cold_seconds: Aggregate,
    /// Wall-clock seconds per run, warm (incumbent carry-over plus
    /// power-method warm starts).
    pub warm_seconds: Aggregate,
    /// Total branch-and-bound nodes expanded across all iterations and
    /// seeds, cold.
    pub cold_nodes: u64,
    /// Same total, warm — never larger than `cold_nodes` for the
    /// sequential solver (a warm incumbent only tightens the bound).
    pub warm_nodes: u64,
    /// `cold_seconds.mean / warm_seconds.mean`.
    pub speedup: f64,
}

/// The `BENCH_formation.json` experiment: run TVOF cold and warm on the
/// *same* scenarios with the *same* eviction-RNG streams (so the traces
/// are identical — see `tests/differential_warm_cold.rs`) and compare
/// wall-clock and node counts.
pub fn warm_cold_sweep(cfg: &TableI, seeds: &[u64]) -> Result<Vec<WarmColdPoint>> {
    let generator = ScenarioGenerator::new(cfg.clone());
    let cold_cfg = FormationConfig { warm_start: false, ..paper_config(cfg) };
    let warm_cfg = FormationConfig { warm_start: true, ..paper_config(cfg) };
    let mut points = Vec::with_capacity(cfg.task_sizes.len());
    for (size_idx, &tasks) in cfg.task_sizes.iter().enumerate() {
        let results = run_seeds(0xF9C0 + size_idx as u64, seeds, |seed, rng| {
            let scenario = generator.scenario(tasks, rng)?;
            // Twin RNGs: eviction tie-breaks consume the same stream in
            // both runs, so cold and warm walk the same trace.
            let mut cold_rng = crate::runner::seeded_rng(0xF9C1, seed);
            let mut warm_rng = crate::runner::seeded_rng(0xF9C1, seed);
            let cold =
                Mechanism::tvof(cold_cfg).run(&scenario, &mut cold_rng).map_err(SimError::from)?;
            let warm =
                Mechanism::tvof(warm_cfg).run(&scenario, &mut warm_rng).map_err(SimError::from)?;
            let nodes = |o: &FormationOutcome| o.iterations.iter().map(|i| i.nodes).sum::<u64>();
            Ok::<_, SimError>((cold.total_seconds, nodes(&cold), warm.total_seconds, nodes(&warm)))
        });
        let mut cold_s = Vec::new();
        let mut warm_s = Vec::new();
        let (mut cold_nodes, mut warm_nodes) = (0u64, 0u64);
        for r in results {
            let (cs, cn, ws, wn) = r?;
            cold_s.push(cs);
            warm_s.push(ws);
            cold_nodes += cn;
            warm_nodes += wn;
        }
        let cold_seconds = Aggregate::of(&cold_s);
        let warm_seconds = Aggregate::of(&warm_s);
        let speedup =
            if warm_seconds.mean > 0.0 { cold_seconds.mean / warm_seconds.mean } else { 1.0 };
        points.push(WarmColdPoint {
            tasks,
            cold_seconds,
            warm_seconds,
            cold_nodes,
            warm_nodes,
            speedup,
        });
    }
    Ok(points)
}

/// GSP counts above which the bit-identity cross-check is skipped
/// (the unlimited exact baseline is out of reach there — that is the
/// point of the anytime portfolio).
const SCALE_EXACT_CHECK_MAX_GSPS: usize = 16;

/// Node cap used by the bit-identity cross-check. Any value works —
/// the property under test is that the portfolio and the exact solver
/// truncate *identically* under the same deterministic cap — so it is
/// kept small to bound the check's runtime.
const SCALE_CHECK_NODE_CAP: u64 = 200_000;

/// One GSP-count point of the anytime scale frontier
/// (`BENCH_formation.json`'s `scale_frontier` section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Provider-pool size.
    pub gsps: usize,
    /// Program size (2 tasks per GSP).
    pub tasks: usize,
    /// Wall-clock seconds per budgeted formation run.
    pub seconds: Aggregate,
    /// Total branch-and-bound nodes expanded across rounds and seeds.
    pub nodes: u64,
    /// Mean relative optimality gap of the selected VO across formed
    /// runs (proven-optimal selections contribute 0).
    pub mean_gap: f64,
    /// Worst selected-VO gap across formed runs.
    pub worst_gap: f64,
    /// Runs whose trace contained at least one truncated solve.
    pub truncated_runs: usize,
    /// Runs that selected a VO.
    pub formed_runs: usize,
    /// Bit-identity cross-check (small scales only): every seed's
    /// node-capped portfolio trace equalled the exact solver's under
    /// the same cap. `None` above [`SCALE_EXACT_CHECK_MAX_GSPS`].
    pub exact_match: Option<bool>,
}

/// The anytime scale frontier: formation with the racing
/// [`Portfolio`] under a fixed wall-clock budget per run, swept over
/// provider-pool sizes (2 tasks per GSP). At small scales every run
/// is additionally replayed with a *node-capped* budget against the
/// plain exact solver under the same cap — the deterministic half of
/// the budget — and the traces must agree bit for bit.
pub fn scale_sweep(
    cfg: &TableI,
    gsp_counts: &[usize],
    budget_ms: u64,
    seeds: &[u64],
) -> Result<Vec<ScalePoint>> {
    let mut points = Vec::with_capacity(gsp_counts.len());
    for (idx, &gsps) in gsp_counts.iter().enumerate() {
        let tasks = gsps * 2;
        let scale_cfg = TableI { gsps, task_sizes: vec![tasks], ..cfg.clone() };
        let generator = ScenarioGenerator::new(scale_cfg.clone());
        let budgeted_cfg = FormationConfig {
            solver: SolverChoice::Portfolio(Portfolio::default()),
            ..Default::default()
        };
        let capped_cfg = FormationConfig {
            solver: SolverChoice::Portfolio(Portfolio {
                exact: BranchBound { max_nodes: u64::MAX, seed_incumbent: true },
            }),
            ..Default::default()
        };
        let exact_cfg = FormationConfig {
            solver: SolverChoice::Exact(BranchBound {
                max_nodes: SCALE_CHECK_NODE_CAP,
                seed_incumbent: true,
            }),
            ..Default::default()
        };
        let results = run_seeds(0x5CA10 + idx as u64, seeds, |seed, rng| {
            let scenario = generator.scenario(tasks, rng)?;
            // The budgeted anytime run: one wall-clock budget covers
            // the whole formation (every eviction round).
            let budget = Budget::with_deadline(Instant::now() + Duration::from_millis(budget_ms));
            let outcome = Mechanism::tvof(budgeted_cfg)
                .run_cached_with_budget(
                    &scenario,
                    &mut crate::runner::seeded_rng(0x5CA11, seed),
                    &mut NoCache,
                    &budget,
                )
                .map_err(SimError::from)?;
            // Bit-identity cross-check under the deterministic half of
            // the budget (node cap only), twin RNG streams.
            let exact_match = if gsps <= SCALE_EXACT_CHECK_MAX_GSPS {
                let cap = Budget { deadline: None, max_nodes: SCALE_CHECK_NODE_CAP };
                let mut capped = Mechanism::tvof(capped_cfg)
                    .run_cached_with_budget(
                        &scenario,
                        &mut crate::runner::seeded_rng(0x5CA12, seed),
                        &mut NoCache,
                        &cap,
                    )
                    .map_err(SimError::from)?;
                let mut exact = Mechanism::tvof(exact_cfg)
                    .run(&scenario, &mut crate::runner::seeded_rng(0x5CA12, seed))
                    .map_err(SimError::from)?;
                capped.zero_timings();
                exact.zero_timings();
                Some(capped == exact)
            } else {
                None
            };
            Ok::<_, SimError>((outcome, exact_match))
        });
        let mut secs = Vec::new();
        let mut nodes = 0u64;
        let mut gaps = Vec::new();
        let (mut truncated_runs, mut formed_runs) = (0usize, 0usize);
        let mut exact_match: Option<bool> = None;
        for r in results {
            let (outcome, matched) = r?;
            secs.push(outcome.total_seconds);
            nodes += outcome.iterations.iter().map(|i| i.nodes).sum::<u64>();
            if outcome.feasible_vos.iter().any(|v| !v.optimal) {
                truncated_runs += 1;
            }
            if let Some(vo) = &outcome.selected {
                formed_runs += 1;
                gaps.push(vo.gap.unwrap_or(0.0));
            }
            if let Some(m) = matched {
                exact_match = Some(exact_match.unwrap_or(true) && m);
            }
        }
        let mean_gap =
            if gaps.is_empty() { 0.0 } else { gaps.iter().sum::<f64>() / gaps.len() as f64 };
        let worst_gap = gaps.iter().copied().fold(0.0f64, f64::max);
        points.push(ScalePoint {
            gsps,
            tasks,
            seconds: Aggregate::of(&secs),
            nodes,
            mean_gap,
            worst_gap,
            truncated_runs,
            formed_runs,
            exact_match,
        });
    }
    Ok(points)
}

/// One program's row in Fig. 4: the payoff share of the VO selected by
/// the paper's max-payoff rule vs the VO with the highest
/// payoff × reputation product, from the same TVOF run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionComparison {
    /// Seed identifying the program.
    pub seed: u64,
    /// Payoff share of the max-payoff VO (the mechanism's choice).
    pub max_payoff_share: f64,
    /// Payoff share of the max-product VO.
    pub max_product_share: f64,
    /// Whether both rules picked the same VO.
    pub same_vo: bool,
}

/// Fig. 4 — per-program comparison of selection rules on `tasks`-task
/// programs (the paper uses 10 programs of 256 tasks).
pub fn selection_comparison(
    cfg: &TableI,
    tasks: usize,
    seeds: &[u64],
) -> Result<Vec<SelectionComparison>> {
    let generator = ScenarioGenerator::new(cfg.clone());
    let mech_cfg = paper_config(cfg);
    let results = run_seeds(0xF4, seeds, |seed, rng| {
        let scenario = generator.scenario(tasks, rng)?;
        let outcome = Mechanism::tvof(mech_cfg).run(&scenario, rng).map_err(SimError::from)?;
        let selected = outcome.selected.as_ref();
        let product = outcome.best_product_vo();
        Ok::<_, SimError>(SelectionComparison {
            seed,
            max_payoff_share: selected.map_or(0.0, |v| v.payoff_share),
            max_product_share: product.map_or(0.0, |v| v.payoff_share),
            same_vo: match (selected, product) {
                (Some(a), Some(b)) => a.members == b.members,
                _ => false,
            },
        })
    });
    results.into_iter().collect()
}

/// Figs. 5–8 — full iteration traces of TVOF and RVOF on one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePair {
    /// Program size.
    pub tasks: usize,
    /// Seed identifying the program.
    pub seed: u64,
    /// TVOF iterations (Figs. 5–6 data).
    pub tvof: Vec<gridvo_core::IterationRecord>,
    /// RVOF iterations (Figs. 7–8 data).
    pub rvof: Vec<gridvo_core::IterationRecord>,
}

/// Run both mechanisms on the same scenario and keep the full traces.
pub fn iteration_trace(cfg: &TableI, tasks: usize, seed: u64) -> Result<TracePair> {
    let generator = ScenarioGenerator::new(cfg.clone());
    let mech_cfg = paper_config(cfg);
    let mut rng = crate::runner::seeded_rng(0xF5678, seed);
    let scenario = generator.scenario(tasks, &mut rng)?;
    let tvof = Mechanism::tvof(mech_cfg).run(&scenario, &mut rng)?;
    let rvof = Mechanism::rvof(mech_cfg).run(&scenario, &mut rng)?;
    Ok(TracePair { tasks, seed, tvof: tvof.iterations, rvof: rvof.iterations })
}

/// One row of the fault-injection sweep: execution outcomes at one
/// fault rate, aggregated over seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepPoint {
    /// Overall per-member, per-round fault probability.
    pub fault_rate: f64,
    /// Fraction of struck faults that were recovered (not abandoned),
    /// per run with at least one fault.
    pub recovery_rate: Aggregate,
    /// Fraction of runs whose execution completed (possibly degraded).
    pub completion_rate: f64,
    /// `final_payoff_share / initial_payoff_share` per run (0 when
    /// abandoned).
    pub payoff_retention: Aggregate,
    /// Wall-clock seconds per recovery episode (recovery latency).
    pub recovery_seconds: Aggregate,
    /// Share of recoveries handled by greedy repair alone (vs. a full
    /// re-solve), across all runs.
    pub repair_fraction: f64,
    /// Runs at this rate that selected a VO (and thus executed).
    pub runs: usize,
}

/// The `BENCH_faults.json` experiment: form a VO per seed, draw a
/// seeded fault plan at each rate, execute with the repair-first
/// recovery policy, and aggregate recovery rate, payoff retention and
/// recovery latency vs. the fault rate.
pub fn fault_sweep(
    cfg: &TableI,
    tasks: usize,
    rates: &[f64],
    rounds: usize,
    seeds: &[u64],
) -> Result<Vec<FaultSweepPoint>> {
    use gridvo_core::RecoveryKind;
    let generator = ScenarioGenerator::new(cfg.clone());
    let mech_cfg = paper_config(cfg);
    let mut points = Vec::with_capacity(rates.len());
    for (rate_idx, &rate) in rates.iter().enumerate() {
        let model = crate::faults::FaultModel::with_rate(rate, rounds);
        let results = run_seeds(0xFA017 + rate_idx as u64, seeds, |_seed, rng| {
            let scenario = generator.scenario(tasks, rng)?;
            let mech = Mechanism::tvof(mech_cfg);
            let outcome = mech.run(&scenario, rng).map_err(SimError::from)?;
            let Some(vo) = outcome.selected else {
                return Ok::<_, SimError>(None);
            };
            let plan = model.plan(&vo.members, rng);
            let report = mech.execute(&scenario, &vo, &plan).map_err(SimError::from)?;
            Ok(Some(report))
        });
        let mut recovery_rates = Vec::new();
        let mut retentions = Vec::new();
        let mut latencies = Vec::new();
        let mut completed = 0usize;
        let mut runs = 0usize;
        let (mut repairs, mut recoveries) = (0usize, 0usize);
        for r in results {
            let Some(report) = r? else { continue };
            runs += 1;
            if report.completed() {
                completed += 1;
            }
            retentions.push(report.payoff_retention);
            if !report.recoveries.is_empty() {
                recovery_rates
                    .push(report.recovered_count() as f64 / report.recoveries.len() as f64);
            }
            for rec in &report.recoveries {
                latencies.push(rec.seconds);
                if rec.recovery_kind != RecoveryKind::Absorbed {
                    recoveries += 1;
                    if rec.recovery_kind == RecoveryKind::Repair {
                        repairs += 1;
                    }
                }
            }
        }
        points.push(FaultSweepPoint {
            fault_rate: rate,
            recovery_rate: Aggregate::of(&recovery_rates),
            completion_rate: if runs > 0 { completed as f64 / runs as f64 } else { 0.0 },
            payoff_retention: Aggregate::of(&retentions),
            recovery_seconds: Aggregate::of(&latencies),
            repair_fraction: if recoveries > 0 { repairs as f64 / recoveries as f64 } else { 0.0 },
            runs,
        });
    }
    Ok(points)
}

/// One row of the adversary-economics sweep (`BENCH_reputation.json`):
/// attacker outcomes under one reputation-attack strategy, aggregated
/// over seeds. The `honest` row is the baseline — the same attacker
/// ids playing honestly at honest reliability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReputationPoint {
    /// Strategy name (`honest`, `whitewash`, `oscillate`,
    /// `badmouth-ring`).
    pub strategy: String,
    /// Late-window selection rate per attacker GSP.
    pub attacker_selection: Aggregate,
    /// Late-window mean per-round payoff per attacker GSP.
    pub attacker_payoff: Aggregate,
    /// Attackers' share of all payoff distributed in the late window.
    pub attacker_payoff_share: Aggregate,
    /// Late-window selection rate per honest GSP (the bystanders).
    pub honest_selection: Aggregate,
    /// Late-window mean per-round payoff per honest GSP.
    pub honest_payoff: Aggregate,
    /// Simulated rounds per run.
    pub rounds: usize,
}

/// The `BENCH_reputation.json` experiment: a small federation with
/// two designated attackers runs `rounds` of receipt-driven dynamic
/// formation under each attack strategy (plus the honest baseline).
/// Metrics are taken from the late half of the horizon, after the
/// reputation loop has had time to react.
pub fn reputation_sweep(rounds: usize, seeds: &[u64]) -> Result<Vec<ReputationPoint>> {
    use crate::adversary::{mean_payoff, selection_rate, AdversaryKind, BetaDynamics};
    use crate::dynamic::{simulate, DynamicConfig};
    use gridvo_trust::beta::DEFAULT_LAMBDA;

    const ATTACKERS: [usize; 2] = [4, 5];
    const HONEST: [usize; 4] = [0, 1, 2, 3];
    let table = TableI {
        gsps: 6,
        task_sizes: vec![18],
        trace_jobs: 1_500,
        deadline_factor_range: (4.0, 16.0),
        ..TableI::default()
    };
    let strategies: [(&str, AdversaryKind, f64); 4] = [
        ("honest", AdversaryKind::Honest, 0.95),
        ("whitewash", AdversaryKind::Whitewash { period: 4 }, 0.3),
        ("oscillate", AdversaryKind::Oscillate { period: 4 }, 0.95),
        ("badmouth-ring", AdversaryKind::BadmouthRing, 0.3),
    ];

    let mut points = Vec::with_capacity(strategies.len());
    for (idx, (name, kind, attacker_reliability)) in strategies.into_iter().enumerate() {
        let results = run_seeds(0xBE7A + idx as u64, seeds, |_seed, rng| {
            let mut reliabilities = vec![0.98, 0.95, 0.95, 0.95, 0.0, 0.0];
            for &a in &ATTACKERS {
                reliabilities[a] = attacker_reliability;
            }
            let mut cfg = DynamicConfig::new(table.clone(), rounds, 18, reliabilities);
            cfg.beta = Some(BetaDynamics::attack(DEFAULT_LAMBDA, ATTACKERS.to_vec(), kind));
            simulate(&cfg, Mechanism::tvof(paper_config(&table)), rng)
        });
        let mut attacker_sel = Vec::new();
        let mut attacker_pay = Vec::new();
        let mut attacker_share = Vec::new();
        let mut honest_sel = Vec::new();
        let mut honest_pay = Vec::new();
        for records in results {
            let records = records?;
            let late = &records[rounds / 2..];
            for &g in &ATTACKERS {
                attacker_sel.push(selection_rate(late, g));
                attacker_pay.push(mean_payoff(late, g));
            }
            for &g in &HONEST {
                honest_sel.push(selection_rate(late, g));
                honest_pay.push(mean_payoff(late, g));
            }
            let total: f64 = late.iter().map(|r| r.payoff_share * r.members.len() as f64).sum();
            let attackers_total: f64 = late
                .iter()
                .map(|r| {
                    r.payoff_share
                        * r.members.iter().filter(|g| ATTACKERS.contains(g)).count() as f64
                })
                .sum();
            attacker_share.push(if total > 0.0 { attackers_total / total } else { 0.0 });
        }
        points.push(ReputationPoint {
            strategy: name.to_string(),
            attacker_selection: Aggregate::of(&attacker_sel),
            attacker_payoff: Aggregate::of(&attacker_pay),
            attacker_payoff_share: Aggregate::of(&attacker_share),
            honest_selection: Aggregate::of(&honest_sel),
            honest_payoff: Aggregate::of(&honest_pay),
            rounds,
        });
    }
    Ok(points)
}

/// Run one mechanism on a prepared scenario (used by benches that want
/// to time the mechanism without scenario-generation noise).
pub fn run_on_scenario(
    scenario: &FormationScenario,
    mech: Mechanism,
    seed: u64,
) -> Result<FormationOutcome> {
    let mut rng = crate::runner::seeded_rng(0xF9, seed);
    Ok(mech.run(scenario, &mut rng)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TableI {
        TableI {
            task_sizes: vec![12, 18],
            gsps: 4,
            trace_jobs: 1500,
            // small programs need a looser deadline than the paper's
            // n/1000 scaling provides (see instance_gen calibration)
            deadline_factor_range: (4.0, 16.0),
            ..TableI::small()
        }
    }

    #[test]
    fn task_sweep_produces_one_point_per_size() {
        let cfg = tiny_cfg();
        let points = task_sweep(&cfg, &[1, 2, 3]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].tasks, 12);
        assert_eq!(points[1].tasks, 18);
        for p in &points {
            assert!(p.formed_runs > 0, "no VO formed at size {}", p.tasks);
            assert!(p.tvof_payoff.mean > 0.0);
            assert!(p.rvof_payoff.mean > 0.0);
            // Fig. 2 sanity: VO sizes within [1, m]
            assert!(p.tvof_vo_size.mean >= 1.0 && p.tvof_vo_size.mean <= 4.0);
        }
    }

    #[test]
    fn fig3_shape_tvof_reputation_at_least_rvof() {
        // The paper's headline qualitative claim. With few seeds this
        // is noisy, so assert on the sum across sizes rather than
        // pointwise.
        let cfg = tiny_cfg();
        let points = task_sweep(&cfg, &[1, 2, 3, 4, 5, 6]).unwrap();
        let tv: f64 = points.iter().map(|p| p.tvof_reputation.mean).sum();
        let rv: f64 = points.iter().map(|p| p.rvof_reputation.mean).sum();
        assert!(tv >= rv - 1e-9, "TVOF mean reputation {tv} fell below RVOF {rv} across the sweep");
    }

    #[test]
    fn selection_comparison_has_one_row_per_seed() {
        let cfg = tiny_cfg();
        let rows = selection_comparison(&cfg, 12, &[1, 2, 3, 4]).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // the product VO's payoff can never exceed the max-payoff VO's
            assert!(r.max_product_share <= r.max_payoff_share + 1e-9);
        }
    }

    #[test]
    fn iteration_trace_has_both_mechanisms() {
        let cfg = tiny_cfg();
        let t = iteration_trace(&cfg, 12, 1).unwrap();
        assert!(!t.tvof.is_empty());
        assert!(!t.rvof.is_empty());
        // iteration 0 is the grand coalition in both
        assert_eq!(t.tvof[0].members.len(), 4);
        assert_eq!(t.rvof[0].members.len(), 4);
        // TVOF trace sizes strictly decrease
        for w in t.tvof.windows(2) {
            assert_eq!(w[1].members.len() + 1, w[0].members.len());
        }
    }

    #[test]
    fn warm_cold_sweep_warm_never_expands_more_nodes() {
        let cfg = tiny_cfg();
        let points = warm_cold_sweep(&cfg, &[1, 2, 3]).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.warm_nodes <= p.cold_nodes,
                "size {}: warm {} nodes vs cold {}",
                p.tasks,
                p.warm_nodes,
                p.cold_nodes
            );
            assert!(p.cold_seconds.mean >= 0.0 && p.warm_seconds.mean >= 0.0);
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
        }
    }

    #[test]
    fn fault_sweep_zero_rate_is_lossless_and_rates_degrade() {
        let cfg = tiny_cfg();
        let points = fault_sweep(&cfg, 12, &[0.0, 0.6], 3, &[1, 2, 3, 4]).unwrap();
        assert_eq!(points.len(), 2);
        let clean = &points[0];
        assert!(clean.runs > 0);
        assert_eq!(clean.completion_rate, 1.0, "no faults → every execution completes");
        assert!(
            (clean.payoff_retention.mean - 1.0).abs() < 1e-12,
            "no faults → full payoff retention, got {}",
            clean.payoff_retention.mean
        );
        let faulty = &points[1];
        assert!(
            faulty.payoff_retention.mean <= clean.payoff_retention.mean + 1e-9,
            "faults cannot increase retention"
        );
        for p in &points {
            assert!(p.completion_rate >= 0.0 && p.completion_rate <= 1.0);
            assert!(p.repair_fraction >= 0.0 && p.repair_fraction <= 1.0);
        }
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let cfg = tiny_cfg();
        let a = fault_sweep(&cfg, 12, &[0.3], 3, &[1, 2]).unwrap();
        let b = fault_sweep(&cfg, 12, &[0.3], 3, &[1, 2]).unwrap();
        assert_eq!(a[0].fault_rate, b[0].fault_rate);
        assert_eq!(a[0].runs, b[0].runs);
        assert_eq!(a[0].completion_rate, b[0].completion_rate);
        assert_eq!(a[0].payoff_retention, b[0].payoff_retention);
    }

    #[test]
    fn reputation_sweep_has_baseline_and_is_deterministic() {
        let a = reputation_sweep(6, &[1, 2]).unwrap();
        let b = reputation_sweep(6, &[1, 2]).unwrap();
        assert_eq!(a, b, "sweep must be deterministic under fixed seeds");
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].strategy, "honest");
        for p in &a {
            assert!(p.attacker_selection.mean >= 0.0 && p.attacker_selection.mean <= 1.0);
            assert!(p.attacker_payoff_share.mean >= 0.0 && p.attacker_payoff_share.mean <= 1.0);
            assert_eq!(p.rounds, 6);
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = tiny_cfg();
        let a = iteration_trace(&cfg, 12, 5).unwrap();
        let b = iteration_trace(&cfg, 12, 5).unwrap();
        assert_eq!(a.tvof.len(), b.tvof.len());
        for (x, y) in a.tvof.iter().zip(b.tvof.iter()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.evicted, y.evicted);
        }
    }
}
