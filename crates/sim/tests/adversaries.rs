//! Adversarial scenario suite for the receipt-driven reputation loop.
//!
//! The economic claim under test: once trust is *earned* from
//! execution receipts (Beta posterior, λ-discounted) instead of
//! declared, the classic reputation attacks stop paying. For each
//! attack we run the same dynamic simulation twice — attackers
//! playing the attack vs the same ids playing honest — and require
//! that, within the simulated horizon, attacking leaves the attackers
//! with a *lower* selection rate and payoff share than honesty would
//! have, while the honest population keeps getting selected.

use gridvo_core::mechanism::{FormationConfig, Mechanism};
use gridvo_sim::adversary::{mean_payoff, selection_rate, AdversaryKind, BetaDynamics};
use gridvo_sim::config::TableI;
use gridvo_sim::dynamic::{simulate, DynamicConfig, RoundRecord};
use gridvo_trust::beta::DEFAULT_LAMBDA;
use rand::SeedableRng;

type TestRng = rand::rngs::StdRng;

const ROUNDS: usize = 16;
/// The attack must have collapsed by this round (the "K" of the
/// acceptance criterion); metrics below are taken from `K..ROUNDS`.
const K: usize = 8;
const ATTACKERS: [usize; 2] = [4, 5];
const HONEST: [usize; 4] = [0, 1, 2, 3];
const SEEDS: u64 = 4;

fn table() -> TableI {
    TableI {
        gsps: 6,
        task_sizes: vec![18],
        trace_jobs: 1_500,
        deadline_factor_range: (4.0, 16.0),
        ..TableI::default()
    }
}

/// One dynamic run: honest GSPs at ~0.95 reliability, attackers at
/// `attacker_reliability`, everyone's trust earned from receipts.
fn run(kind: AdversaryKind, attacker_reliability: f64, seed: u64) -> Vec<RoundRecord> {
    let mut reliabilities = vec![0.98, 0.95, 0.95, 0.95, 0.0, 0.0];
    for &a in &ATTACKERS {
        reliabilities[a] = attacker_reliability;
    }
    let mut cfg = DynamicConfig::new(table(), ROUNDS, 18, reliabilities);
    cfg.beta = Some(BetaDynamics::attack(DEFAULT_LAMBDA, ATTACKERS.to_vec(), kind));
    let mut rng = TestRng::seed_from_u64(seed);
    simulate(&cfg, Mechanism::tvof(FormationConfig::default()), &mut rng)
        .expect("dynamic simulation runs")
}

/// Mean over GSPs in `ids` of `f(records, gsp)`, averaged over seeds.
fn averaged(
    kind: AdversaryKind,
    attacker_reliability: f64,
    ids: &[usize],
    f: fn(&[RoundRecord], usize) -> f64,
) -> f64 {
    let mut total = 0.0;
    for seed in 0..SEEDS {
        let records = run(kind, attacker_reliability, seed);
        let late = &records[K..];
        total += ids.iter().map(|&g| f(late, g)).sum::<f64>() / ids.len() as f64;
    }
    total / SEEDS as f64
}

/// Asserts the collapse criterion for one attack: attackers end up
/// worse off than the same ids playing honest, and honest GSPs keep
/// participating.
fn assert_attack_does_not_pay(kind: AdversaryKind, attacker_reliability: f64, label: &str) {
    let attack_selection = averaged(kind, attacker_reliability, &ATTACKERS, selection_rate);
    let attack_payoff = averaged(kind, attacker_reliability, &ATTACKERS, mean_payoff);
    let honest_selection = averaged(AdversaryKind::Honest, 0.95, &ATTACKERS, selection_rate);
    let honest_payoff = averaged(AdversaryKind::Honest, 0.95, &ATTACKERS, mean_payoff);

    assert!(
        attack_selection < honest_selection,
        "{label}: attacker selection rate {attack_selection:.3} did not drop below the honest \
         baseline {honest_selection:.3} after round {K}"
    );
    assert!(
        attack_payoff < honest_payoff,
        "{label}: attacker payoff {attack_payoff:.3} did not drop below the honest baseline \
         {honest_payoff:.3} after round {K}"
    );

    // The attack must not take the honest population down with it:
    // honest GSPs keep a clearly higher selection rate than the
    // attackers under the same run, and stay in the same participation
    // band as a fully honest world.
    let bystander_selection = averaged(kind, attacker_reliability, &HONEST, selection_rate);
    let baseline_bystander = averaged(AdversaryKind::Honest, 0.95, &HONEST, selection_rate);
    assert!(
        bystander_selection > attack_selection,
        "{label}: honest GSPs ({bystander_selection:.3}) should outpace attackers \
         ({attack_selection:.3})"
    );
    assert!(
        bystander_selection >= 0.7 * baseline_bystander,
        "{label}: the attack collapsed honest participation \
         ({bystander_selection:.3} vs honest-world {baseline_bystander:.3})"
    );
}

#[test]
fn whitewashing_does_not_pay() {
    // Unreliable GSPs that shed their identity every 4 rounds: the
    // clean slate erases their bad record, but it erases their earned
    // standing too — they never out-earn the honest play.
    assert_attack_does_not_pay(AdversaryKind::Whitewash { period: 4 }, 0.3, "whitewash");
}

#[test]
fn oscillating_defection_does_not_pay() {
    // Alternate 4 honest rounds with 4 defecting rounds; the λ
    // discount makes fresh failures outweigh stale successes.
    assert_attack_does_not_pay(AdversaryKind::Oscillate { period: 4 }, 0.95, "oscillate");
}

#[test]
fn badmouthing_ring_does_not_pay() {
    // A colluding pair praises itself and smears every honest
    // co-member, while actually delivering at 0.3.
    assert_attack_does_not_pay(AdversaryKind::BadmouthRing, 0.3, "badmouth-ring");
}

#[test]
fn adversarial_runs_are_deterministic_per_seed() {
    for kind in [
        AdversaryKind::Honest,
        AdversaryKind::Whitewash { period: 4 },
        AdversaryKind::Oscillate { period: 4 },
        AdversaryKind::BadmouthRing,
    ] {
        let a = run(kind, 0.3, 11);
        let b = run(kind, 0.3, 11);
        assert_eq!(a, b, "{kind:?} must replay byte-identically under one seed");
    }
}
