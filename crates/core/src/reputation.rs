//! VO-scoped reputation (Algorithm 2 applied inside the mechanism).
//!
//! TVOF recomputes reputations **inside the current VO** every
//! iteration: only members' opinions count, so an evicted GSP's
//! ratings stop influencing anyone (the paper's §III-A recalculation
//! argument). This module is the thin adapter from `gridvo-trust` that
//! performs exactly that, mapping scores back to global GSP ids.

use crate::Result;
use gridvo_trust::normalize::DanglingPolicy;
use gridvo_trust::propagation::{propagation_scores, PathCombine};
use gridvo_trust::{PowerMethod, TrustGraph};

/// Which algorithm turns the VO's trust subgraph into per-member
/// reputation scores. The paper uses the power method; the others
/// back the reputation-engine ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// The paper's Algorithm 2: power iteration to the left principal
    /// eigenvector (eigenvector centrality). `PowerMethod::damped`
    /// gives the PageRank variant.
    Power(PowerMethod),
    /// Hang-et-al. path propagation: concatenate trust along simple
    /// paths (≤ `max_hops`), combine parallel paths with `combine`,
    /// score each member by the mean trust it receives.
    PathPropagation {
        /// Maximum path length explored (exponential in this; ≤ ~6).
        max_hops: usize,
        /// Parallel-path combination rule.
        combine: PathCombine,
    },
    /// Weighted in-degree: total direct trust received. The cheapest
    /// possible engine; ignores transitivity entirely.
    InDegree,
}

/// Reputation engine configuration used by the mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationEngine {
    /// Scoring algorithm.
    pub kind: EngineKind,
    /// Dangling-row policy for members who trust nobody inside the VO
    /// (power-method engines only).
    pub dangling: DanglingPolicy,
}

impl Default for ReputationEngine {
    fn default() -> Self {
        ReputationEngine {
            kind: EngineKind::Power(PowerMethod::default()),
            dangling: DanglingPolicy::Uniform,
        }
    }
}

impl ReputationEngine {
    /// The paper's engine with explicit power-method settings.
    pub fn power(power: PowerMethod) -> Self {
        ReputationEngine { kind: EngineKind::Power(power), ..Default::default() }
    }

    /// PageRank-style damped engine.
    pub fn pagerank(alpha: f64) -> Self {
        ReputationEngine {
            kind: EngineKind::Power(PowerMethod::damped(alpha)),
            ..Default::default()
        }
    }

    /// Path-propagation engine.
    pub fn propagation(max_hops: usize, combine: PathCombine) -> Self {
        ReputationEngine {
            kind: EngineKind::PathPropagation { max_hops, combine },
            ..Default::default()
        }
    }

    /// In-degree engine.
    pub fn in_degree() -> Self {
        ReputationEngine { kind: EngineKind::InDegree, ..Default::default() }
    }
}

/// Reputation of every member of a VO, indexed like `members`.
#[derive(Debug, Clone, PartialEq)]
pub struct VoReputation {
    /// Global GSP ids, in the same order as `scores`.
    pub members: Vec<usize>,
    /// Global reputation score of each member (probability vector).
    pub scores: Vec<f64>,
    /// Average global reputation `x̄(C)` (eq. (7)), computed on the
    /// **L2-normalized** eigenvector (see module docs of
    /// [`crate::reputation`]): `x̄ = Σᵢ (xᵢ/‖x‖₂) / |C|`. This lies in
    /// `[1/|C|, 1/√|C|]`, peaking when trust is evenly distributed —
    /// the discriminative reading of eq. (7) that reproduces the
    /// paper's Figs. 3 and 5–8 (the L1 reading is identically
    /// `1/|C|`, which cannot separate TVOF from RVOF).
    pub average: f64,
    /// Power-method iterations used.
    pub iterations: usize,
}

/// Tolerance under which two reputation scores count as tied in
/// [`VoReputation::lowest_members`]. The power method stops at an L1
/// residual of ~1e-10, so two runs of the same subgraph from different
/// starting vectors (cold uniform vs warm-started) agree to ~1e-10 but
/// not bitwise; a 1e-8 tie band makes the eviction choice — and hence
/// the whole formation trace — independent of the starting vector.
pub const SCORE_TIE_EPS: f64 = 1e-8;

impl VoReputation {
    /// Global ids of the members attaining the minimum score, up to
    /// [`SCORE_TIE_EPS`] (TVOF breaks ties among these uniformly at
    /// random).
    pub fn lowest_members(&self) -> Vec<usize> {
        let min = self.scores.iter().cloned().fold(f64::INFINITY, f64::min);
        self.members
            .iter()
            .zip(self.scores.iter())
            .filter(|(_, &s)| s <= min + SCORE_TIE_EPS)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Score of a member by global id.
    pub fn score_of(&self, gsp: usize) -> Option<f64> {
        self.members.iter().position(|&m| m == gsp).map(|i| self.scores[i])
    }
}

impl ReputationEngine {
    /// Score the VO's trust subgraph with the configured engine.
    /// `trust` is the *global* graph; `members` the VO's global GSP
    /// ids. All engines return an L1-normalized (probability) score
    /// vector so eviction decisions are engine-comparable.
    pub fn compute(&self, trust: &TrustGraph, members: &[usize]) -> Result<VoReputation> {
        self.compute_with_start(trust, members, None)
    }

    /// [`ReputationEngine::compute`] with an optional warm start.
    ///
    /// `start` is aligned with `members` — typically the previous
    /// eviction round's scores restricted to the survivors (the power
    /// method renormalizes it onto the probability simplex itself).
    /// The fixed point is start-independent, so warm and cold runs
    /// agree to the power method's ε; only `iterations` shrinks. A
    /// degenerate start (wrong length, zero mass, negative or
    /// non-finite entries) falls back to the cold uniform start, and
    /// the non-iterative engines ignore `start` entirely.
    pub fn compute_with_start(
        &self,
        trust: &TrustGraph,
        members: &[usize],
        start: Option<&[f64]>,
    ) -> Result<VoReputation> {
        let sub = trust.restrict(members)?;
        let (mut scores, iterations) = match self.kind {
            EngineKind::Power(power) => {
                let a = gridvo_trust::normalize::row_normalize(&sub, self.dangling);
                let report = match start {
                    Some(s) => power.run_with_start(&a, s)?,
                    None => power.run(&a)?,
                };
                (report.scores, report.iterations)
            }
            EngineKind::PathPropagation { max_hops, combine } => {
                // propagation needs weights in [0, 1]: rescale by max
                let max_w = sub.edges().map(|(_, _, w)| w).fold(1.0f64, f64::max);
                let mut unit = TrustGraph::new(sub.node_count());
                for (i, j, w) in sub.edges() {
                    unit.set_trust(i, j, w / max_w);
                }
                (propagation_scores(&unit, max_hops, combine)?, 1)
            }
            EngineKind::InDegree => {
                let scores: Vec<f64> = (0..sub.node_count()).map(|j| sub.in_trust_sum(j)).collect();
                (scores, 1)
            }
        };
        let mass: f64 = scores.iter().sum();
        if mass > 0.0 {
            for s in scores.iter_mut() {
                *s /= mass;
            }
        } else if !scores.is_empty() {
            // no trust at all inside the VO: everyone equally (un)known
            let u = 1.0 / scores.len() as f64;
            scores.iter_mut().for_each(|s| *s = u);
        }
        let average = l2_average(&scores);
        Ok(VoReputation { members: members.to_vec(), scores, average, iterations })
    }
}

/// Average of the L2-normalized score vector: `Σ xᵢ / (|C|·‖x‖₂)`.
/// Ranges over `[1/|C|, 1/√|C|]` for non-negative scores; higher means
/// reputation is spread evenly over members (a cohesive VO).
pub fn l2_average(scores: &[f64]) -> f64 {
    let k = scores.len();
    if k == 0 {
        return 0.0;
    }
    let norm = scores.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return 0.0;
    }
    scores.iter().sum::<f64>() / (k as f64 * norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trust4() -> TrustGraph {
        let mut g = TrustGraph::new(4);
        // 0 and 1 trust each other heavily; 2 is weakly trusted; 3 is
        // trusted by nobody inside {0,1,2,3} except via dangling spread.
        g.set_trust(0, 1, 1.0);
        g.set_trust(1, 0, 1.0);
        g.set_trust(0, 2, 0.2);
        g.set_trust(1, 2, 0.2);
        g.set_trust(2, 0, 0.5);
        g.set_trust(2, 1, 0.5);
        g
    }

    #[test]
    fn scores_are_probability_vector() {
        let rep = ReputationEngine::default().compute(&trust4(), &[0, 1, 2, 3]).unwrap();
        assert_eq!(rep.members, vec![0, 1, 2, 3]);
        assert!((rep.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // L2 average lies in [1/k, 1/sqrt(k)]
        assert!(rep.average >= 0.25 - 1e-9 && rep.average <= 0.5 + 1e-9);
    }

    #[test]
    fn untrusted_member_is_lowest() {
        let rep = ReputationEngine::default().compute(&trust4(), &[0, 1, 2, 3]).unwrap();
        let lows = rep.lowest_members();
        assert_eq!(lows, vec![3]);
    }

    #[test]
    fn restriction_changes_scores() {
        // After evicting 3, scores are recomputed among {0,1,2}.
        let rep = ReputationEngine::default().compute(&trust4(), &[0, 1, 2]).unwrap();
        assert_eq!(rep.members, vec![0, 1, 2]);
        assert!((rep.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // 2 is the least trusted of the trio
        assert_eq!(rep.lowest_members(), vec![2]);
        // and 0/1 are symmetric
        assert!((rep.scores[0] - rep.scores[1]).abs() < 1e-9);
    }

    #[test]
    fn score_of_by_global_id() {
        let rep = ReputationEngine::default().compute(&trust4(), &[1, 2]).unwrap();
        assert!(rep.score_of(1).is_some());
        assert!(rep.score_of(0).is_none());
    }

    #[test]
    fn average_peaks_at_uniform_scores() {
        // {0,1} trust each other symmetrically: scores are uniform and
        // the L2 average attains its 1/√2 maximum.
        let rep = ReputationEngine::default().compute(&trust4(), &[0, 1]).unwrap();
        assert!((rep.average - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_average_bounds_and_edge_cases() {
        assert_eq!(l2_average(&[]), 0.0);
        assert_eq!(l2_average(&[0.0, 0.0]), 0.0);
        // concentrated vector → 1/k
        assert!((l2_average(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // uniform vector → 1/sqrt(k)
        assert!((l2_average(&[0.25; 4]) - 0.5).abs() < 1e-12);
        // skewed sits strictly between
        let mid = l2_average(&[0.7, 0.1, 0.1, 0.1]);
        assert!(mid > 0.25 && mid < 0.5);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;

    fn trusty() -> TrustGraph {
        let mut g = TrustGraph::new(4);
        g.set_trust(0, 1, 1.0);
        g.set_trust(1, 0, 1.0);
        g.set_trust(0, 2, 0.4);
        g.set_trust(1, 2, 0.4);
        g.set_trust(2, 0, 0.5);
        g.set_trust(3, 0, 0.2);
        g
    }

    #[test]
    fn all_engines_return_probability_vectors() {
        let g = trusty();
        let engines = [
            ReputationEngine::default(),
            ReputationEngine::pagerank(0.85),
            ReputationEngine::propagation(3, PathCombine::Aggregate),
            ReputationEngine::propagation(3, PathCombine::SelectBest),
            ReputationEngine::in_degree(),
        ];
        for e in engines {
            let rep = e.compute(&g, &[0, 1, 2, 3]).unwrap();
            let sum: f64 = rep.scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{:?} not a distribution", e.kind);
            assert!(rep.scores.iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn engines_agree_on_the_obvious_outcast() {
        // GSP 3 receives no trust under every engine.
        let g = trusty();
        for e in [
            ReputationEngine::default(),
            ReputationEngine::propagation(3, PathCombine::Aggregate),
            ReputationEngine::in_degree(),
        ] {
            let rep = e.compute(&g, &[0, 1, 2, 3]).unwrap();
            assert_eq!(rep.lowest_members(), vec![3], "{:?} missed the outcast", e.kind);
        }
    }

    #[test]
    fn in_degree_matches_hand_computation() {
        let g = trusty();
        let rep = ReputationEngine::in_degree().compute(&g, &[0, 1, 2]).unwrap();
        // in-degrees inside {0,1,2}: 0 ← 1.0+0.5 = 1.5; 1 ← 1.0; 2 ← 0.8
        let total = 1.5 + 1.0 + 0.8;
        assert!((rep.scores[0] - 1.5 / total).abs() < 1e-12);
        assert!((rep.scores[1] - 1.0 / total).abs() < 1e-12);
        assert!((rep.scores[2] - 0.8 / total).abs() < 1e-12);
    }

    #[test]
    fn trustless_vo_scores_uniform() {
        let g = TrustGraph::new(3);
        let rep = ReputationEngine::in_degree().compute(&g, &[0, 1, 2]).unwrap();
        for &s in &rep.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
