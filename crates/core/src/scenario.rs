//! The input to a formation run: GSPs, trust, and the grand-coalition
//! assignment instance.

use crate::gsp::Gsp;
use crate::{CoreError, Result};
use gridvo_solver::AssignmentInstance;
use gridvo_trust::TrustGraph;
use serde::{Deserialize, Serialize};

/// Everything the mechanism needs for one program:
///
/// * the set of GSPs (speeds),
/// * the trust graph over them,
/// * the full `tasks × m` assignment instance for the grand coalition
///   (cost matrix, time matrix, deadline `d`, payment `P`).
///
/// Instances for smaller VOs are derived by column restriction.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(try_from = "RawScenario")]
pub struct FormationScenario {
    gsps: Vec<Gsp>,
    trust: TrustGraph,
    instance: AssignmentInstance,
}

/// Serde shadow: deserialization re-runs the cross-shape validation,
/// so a hand-edited scenario file cannot desynchronize the trust
/// graph, GSP list and instance.
#[derive(serde::Deserialize)]
struct RawScenario {
    gsps: Vec<Gsp>,
    trust: TrustGraph,
    instance: AssignmentInstance,
}

impl TryFrom<RawScenario> for FormationScenario {
    type Error = String;
    fn try_from(raw: RawScenario) -> std::result::Result<Self, String> {
        FormationScenario::new(raw.gsps, raw.trust, raw.instance).map_err(|e| e.to_string())
    }
}

impl FormationScenario {
    /// Build and cross-validate a scenario. The trust graph and the
    /// instance's GSP dimension must both match `gsps.len()`.
    pub fn new(gsps: Vec<Gsp>, trust: TrustGraph, instance: AssignmentInstance) -> Result<Self> {
        let m = gsps.len();
        if trust.node_count() != m {
            return Err(CoreError::ShapeMismatch { context: "trust graph vs GSP count" });
        }
        if instance.gsps() != m {
            return Err(CoreError::ShapeMismatch { context: "instance columns vs GSP count" });
        }
        Ok(FormationScenario { gsps, trust, instance })
    }

    /// Number of GSPs `m`.
    pub fn gsp_count(&self) -> usize {
        self.gsps.len()
    }

    /// Number of tasks `n`.
    pub fn task_count(&self) -> usize {
        self.instance.tasks()
    }

    /// The GSPs.
    pub fn gsps(&self) -> &[Gsp] {
        &self.gsps
    }

    /// The trust graph over all GSPs.
    pub fn trust(&self) -> &TrustGraph {
        &self.trust
    }

    /// The grand-coalition assignment instance.
    pub fn instance(&self) -> &AssignmentInstance {
        &self.instance
    }

    /// The payment `P`.
    pub fn payment(&self) -> f64 {
        self.instance.payment()
    }

    /// The deadline `d`.
    pub fn deadline(&self) -> f64 {
        self.instance.deadline()
    }

    /// The IP a candidate VO (given by global GSP indices) faces.
    /// Returns `None` when the VO cannot possibly host the program
    /// (fewer tasks than members — constraint (13) infeasible — or an
    /// empty member list).
    pub fn instance_for(&self, members: &[usize]) -> Option<AssignmentInstance> {
        if members.is_empty() || self.instance.tasks() < members.len() {
            return None;
        }
        self.instance.restrict_gsps(members).ok()
    }

    /// The trust subgraph of a candidate VO.
    pub fn trust_for(&self, members: &[usize]) -> Result<TrustGraph> {
        Ok(self.trust.restrict(members)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(tasks: usize, gsps: usize) -> AssignmentInstance {
        AssignmentInstance::new(
            tasks,
            gsps,
            vec![1.0; tasks * gsps],
            vec![1.0; tasks * gsps],
            100.0,
            100.0,
        )
        .unwrap()
    }

    #[test]
    fn validates_shapes() {
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 20.0)];
        let ok = FormationScenario::new(gsps.clone(), TrustGraph::new(2), instance(4, 2));
        assert!(ok.is_ok());
        let bad_trust = FormationScenario::new(gsps.clone(), TrustGraph::new(3), instance(4, 2));
        assert!(matches!(bad_trust, Err(CoreError::ShapeMismatch { .. })));
        let bad_inst = FormationScenario::new(gsps, TrustGraph::new(2), instance(4, 3));
        assert!(matches!(bad_inst, Err(CoreError::ShapeMismatch { .. })));
    }

    #[test]
    fn instance_for_restricts_columns() {
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 20.0), Gsp::new(2, 30.0)];
        let mut cost = Vec::new();
        for t in 0..4 {
            for g in 0..3 {
                cost.push((t * 3 + g) as f64 + 1.0);
            }
        }
        let inst = AssignmentInstance::new(4, 3, cost, vec![1.0; 12], 100.0, 100.0).unwrap();
        let s = FormationScenario::new(gsps, TrustGraph::new(3), inst).unwrap();
        let sub = s.instance_for(&[0, 2]).unwrap();
        assert_eq!(sub.gsps(), 2);
        assert_eq!(sub.cost(0, 1), 3.0); // task 0, old GSP 2
    }

    #[test]
    fn instance_for_rejects_undersized() {
        // A valid scenario always has tasks ≥ m ≥ |members|, so the
        // reachable degenerate input is the empty member list.
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 20.0)];
        let s = FormationScenario::new(gsps, TrustGraph::new(2), instance(2, 2)).unwrap();
        assert!(s.instance_for(&[]).is_none());
        assert!(s.instance_for(&[0]).is_some());
        assert!(s.instance_for(&[0, 1]).is_some());
    }

    #[test]
    fn trust_for_restricts() {
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 20.0), Gsp::new(2, 30.0)];
        let mut t = TrustGraph::new(3);
        t.set_trust(0, 2, 0.7);
        let s = FormationScenario::new(gsps, t, instance(4, 3)).unwrap();
        let sub = s.trust_for(&[0, 2]).unwrap();
        assert_eq!(sub.trust(0, 1), 0.7);
    }
}
