//! Virtual organizations and formation-run records.

use gridvo_solver::Assignment;
use serde::{Deserialize, Serialize};

/// A feasible VO discovered during a formation run — an element of the
/// mechanism's list `L`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoRecord {
    /// Global GSP ids of the members.
    pub members: Vec<usize>,
    /// The optimal (or best-found) task assignment onto `members`
    /// (GSP indices are positions within `members`).
    pub assignment: Assignment,
    /// Total execution cost `C(T, C)` under that assignment.
    pub cost: f64,
    /// Coalition value `v(C) = P − C(T, C)` (eq. (15)).
    pub value: f64,
    /// Per-member payoff `ψ_G(C) = v(C)/|C|` (eq. (18)).
    pub payoff_share: f64,
    /// Average global reputation `x̄(C)` of the members (eq. (7)),
    /// computed on the VO's trust subgraph.
    pub avg_reputation: f64,
    /// Whether the recorded cost is a *proven* IP optimum (exact
    /// solver, search exhausted) or a heuristic/truncated value.
    pub optimal: bool,
    /// Relative optimality gap `(cost − lower_bound)/cost` of the
    /// solve that produced this record: `Some(0.0)` when proven
    /// optimal, positive when an anytime budget truncated the search,
    /// `None` for heuristic solvers (no bound) and records written by
    /// pre-gap versions.
    pub gap: Option<f64>,
}

impl VoRecord {
    /// Size `|C|`.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The Fig.-4 ranking key: payoff share × average reputation.
    pub fn payoff_reputation_product(&self) -> f64 {
        self.payoff_share * self.avg_reputation
    }
}

/// One iteration of Algorithm 1 (one candidate VO), as plotted in
/// Figs. 5–8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index (0 = grand coalition).
    pub iteration: usize,
    /// Members of the candidate VO at this iteration.
    pub members: Vec<usize>,
    /// Whether the IP was feasible for this VO.
    pub feasible: bool,
    /// Total assignment cost (when feasible).
    pub cost: Option<f64>,
    /// Per-member payoff share (when feasible).
    pub payoff_share: Option<f64>,
    /// Average global reputation of the members.
    pub avg_reputation: f64,
    /// Reputation score of each member (aligned with `members`).
    pub reputation_scores: Vec<f64>,
    /// The member evicted at the end of this iteration (`None` on the
    /// final iteration).
    pub evicted: Option<usize>,
    /// Wall-clock seconds spent solving the IP this iteration.
    pub solve_seconds: f64,
    /// Branch-and-bound nodes expanded this iteration (0 for heuristic
    /// solvers and for pre-search infeasibility proofs).
    pub nodes: u64,
    /// Where the solver's final incumbent came from: `"heuristic"`,
    /// `"warm"` (the repaired previous-round optimum survived the
    /// search) or `"search"`. `None` when the round was infeasible or
    /// solved by a heuristic-only solver.
    pub incumbent_source: Option<String>,
    /// Relative optimality gap of this round's solve (see
    /// [`VoRecord::gap`]); `None` when infeasible, heuristic-solved,
    /// or recorded by a pre-gap version.
    pub gap: Option<f64>,
    /// Power-method iterations the reputation engine used this round
    /// (1 for the non-iterative engines). Warm starts show up here as
    /// a sharp drop after round 0.
    pub power_iterations: usize,
}

/// Complete result of a formation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormationOutcome {
    /// Every iteration, in order (grand coalition first).
    pub iterations: Vec<IterationRecord>,
    /// The feasible VOs recorded in `L`, in discovery order.
    pub feasible_vos: Vec<VoRecord>,
    /// The VO chosen by the selection rule (`None` when `L` is empty —
    /// no VO can execute the program).
    pub selected: Option<VoRecord>,
    /// Total wall-clock seconds for the whole run (the paper's Fig. 9
    /// metric).
    pub total_seconds: f64,
}

impl FormationOutcome {
    /// The best payoff share over `L` (what Fig. 1 reports).
    pub fn best_payoff_share(&self) -> Option<f64> {
        self.feasible_vos.iter().map(|v| v.payoff_share).max_by(|a, b| a.total_cmp(b))
    }

    /// The VO in `L` with the highest payoff × reputation product
    /// (Fig. 4's comparison VO).
    pub fn best_product_vo(&self) -> Option<&VoRecord> {
        self.feasible_vos
            .iter()
            .max_by(|a, b| a.payoff_reputation_product().total_cmp(&b.payoff_reputation_product()))
    }

    /// Zero every wall-clock timing field, leaving only the
    /// deterministic content. Served responses are canonicalized this
    /// way so identical requests are byte-identical (and cache replays
    /// indistinguishable from fresh solves).
    pub fn zero_timings(&mut self) {
        self.total_seconds = 0.0;
        for it in &mut self.iterations {
            it.solve_seconds = 0.0;
        }
    }

    /// Rewrite every member id through `map` (`local index → global
    /// id`). Formation over a restricted sub-pool runs the mechanism
    /// on a scenario whose GSPs are renumbered 0..k; this lifts the
    /// resulting records back into the full pool's id space.
    /// Positional fields — `assignment` (indices into `members`) and
    /// `reputation_scores` (aligned with `members`) — are untouched.
    /// Ids outside `map` (stale records) are left as-is.
    pub fn map_members(&mut self, map: &[usize]) {
        let lift = |id: &mut usize| {
            if let Some(&global) = map.get(*id) {
                *id = global;
            }
        };
        for it in &mut self.iterations {
            it.members.iter_mut().for_each(lift);
            if let Some(evicted) = &mut it.evicted {
                lift(evicted);
            }
        }
        for vo in &mut self.feasible_vos {
            vo.members.iter_mut().for_each(lift);
        }
        if let Some(vo) = &mut self.selected {
            vo.members.iter_mut().for_each(lift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vo(members: Vec<usize>, payoff: f64, rep: f64) -> VoRecord {
        VoRecord {
            assignment: Assignment::new(vec![0; 4]),
            cost: 10.0,
            value: payoff * members.len() as f64,
            payoff_share: payoff,
            avg_reputation: rep,
            members,
            optimal: true,
            gap: Some(0.0),
        }
    }

    #[test]
    fn product_key() {
        let v = vo(vec![0, 1], 5.0, 0.4);
        assert!((v.payoff_reputation_product() - 2.0).abs() < 1e-12);
        assert_eq!(v.size(), 2);
    }

    #[test]
    fn outcome_selectors() {
        let outcome = FormationOutcome {
            iterations: vec![],
            feasible_vos: vec![vo(vec![0, 1, 2], 3.0, 0.9), vo(vec![0, 1], 5.0, 0.3)],
            selected: None,
            total_seconds: 0.0,
        };
        assert_eq!(outcome.best_payoff_share(), Some(5.0));
        // products: 2.7 vs 1.5 → the triple wins on the product key
        assert_eq!(outcome.best_product_vo().unwrap().members, vec![0, 1, 2]);
    }

    #[test]
    fn map_members_lifts_local_ids() {
        let mut outcome = FormationOutcome {
            iterations: vec![IterationRecord {
                iteration: 0,
                members: vec![0, 1, 2],
                feasible: true,
                cost: Some(10.0),
                payoff_share: Some(3.0),
                avg_reputation: 0.5,
                reputation_scores: vec![0.2, 0.3, 0.5],
                evicted: Some(1),
                solve_seconds: 0.0,
                nodes: 4,
                incumbent_source: None,
                gap: Some(0.0),
                power_iterations: 1,
            }],
            feasible_vos: vec![vo(vec![0, 2], 4.0, 0.5)],
            selected: Some(vo(vec![0, 2], 4.0, 0.5)),
            total_seconds: 0.0,
        };
        // Free sub-pool [1, 3, 5]: local 0→1, 1→3, 2→5.
        outcome.map_members(&[1, 3, 5]);
        assert_eq!(outcome.iterations[0].members, vec![1, 3, 5]);
        assert_eq!(outcome.iterations[0].evicted, Some(3));
        // Positional fields are untouched.
        assert_eq!(outcome.iterations[0].reputation_scores, vec![0.2, 0.3, 0.5]);
        assert_eq!(outcome.feasible_vos[0].members, vec![1, 5]);
        assert_eq!(outcome.selected.as_ref().unwrap().members, vec![1, 5]);
    }

    #[test]
    fn empty_outcome() {
        let outcome = FormationOutcome {
            iterations: vec![],
            feasible_vos: vec![],
            selected: None,
            total_seconds: 0.0,
        };
        assert_eq!(outcome.best_payoff_share(), None);
        assert!(outcome.best_product_vo().is_none());
    }
}
