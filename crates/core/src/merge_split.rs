//! Merge-and-split VO formation (the authors' earlier mechanism,
//! Mashayekhy & Grosu, IPCCC 2011 — ref. \[25\] of the ICPP 2012 paper).
//!
//! Instead of shrinking the grand coalition, merge-and-split searches
//! the space of **coalition structures** (partitions of the GSPs) with
//! two local rules under equal sharing:
//!
//! * **merge** `{A, B} → {A ∪ B}` when every member of both coalitions
//!   is weakly better off and at least one strictly:
//!   `v(A∪B)/|A∪B| ≥ v(A)/|A|` and `≥ v(B)/|B|`, one strict;
//! * **split** `{C} → {A, B}` (a bipartition) under the mirror-image
//!   condition.
//!
//! Iterating the rules to a fixed point yields a partition stable
//! against merges and splits (`D_hp`-stability in Apt & Witzel's
//! terminology). The ICPP paper abandoned this search because only one
//! VO executes the program; the module exists to compare the two
//! mechanisms' selected VOs (see the `merge_split` integration tests).

use gridvo_game::{CharacteristicFn, Coalition};

/// Per-member share under equal division; the comparison key of both
/// rules. `0` for the empty coalition.
fn share<G: CharacteristicFn + ?Sized>(game: &G, c: Coalition) -> f64 {
    if c.is_empty() {
        0.0
    } else {
        game.value(c) / c.len() as f64
    }
}

/// Outcome of the merge-and-split iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSplitOutcome {
    /// The final coalition structure (disjoint, covering all players).
    pub partition: Vec<Coalition>,
    /// Merge operations applied.
    pub merges: usize,
    /// Split operations applied.
    pub splits: usize,
    /// False when the iteration cap fired before a fixed point.
    pub converged: bool,
}

impl MergeSplitOutcome {
    /// The best coalition of the final structure by payoff share —
    /// the VO that would execute the program, comparable to TVOF's
    /// selection.
    pub fn best_coalition<G: CharacteristicFn + ?Sized>(&self, game: &G) -> Option<Coalition> {
        self.partition.iter().copied().max_by(|&a, &b| share(game, a).total_cmp(&share(game, b)))
    }
}

/// Tolerance for share comparisons.
const TOL: f64 = 1e-9;

/// Run merge-and-split from the partition of singletons.
pub fn merge_split<G: CharacteristicFn + ?Sized>(game: &G, max_ops: usize) -> MergeSplitOutcome {
    let singletons = (0..game.player_count()).map(Coalition::singleton).collect();
    merge_split_from(game, singletons, max_ops)
}

/// Run merge-and-split from an arbitrary starting partition.
///
/// # Panics
/// Panics when `initial` is not a partition of the player set
/// (overlapping or incomplete coalitions) — a programming error.
pub fn merge_split_from<G: CharacteristicFn + ?Sized>(
    game: &G,
    initial: Vec<Coalition>,
    max_ops: usize,
) -> MergeSplitOutcome {
    let grand = Coalition::grand(game.player_count());
    let mut union = Coalition::EMPTY;
    for &c in &initial {
        assert!(union.is_disjoint(c), "initial structure has overlapping coalitions");
        union = union.union(c);
    }
    assert_eq!(union, grand, "initial structure must cover every player");

    let mut partition: Vec<Coalition> = initial.into_iter().filter(|c| !c.is_empty()).collect();
    let mut merges = 0;
    let mut splits = 0;
    let mut ops = 0;

    loop {
        if ops >= max_ops {
            return MergeSplitOutcome { partition, merges, splits, converged: false };
        }
        if let Some((i, j)) = find_merge(game, &partition) {
            let merged = partition[i].union(partition[j]);
            // remove j first (j > i by construction of find_merge)
            partition.swap_remove(j);
            partition.swap_remove(i);
            partition.push(merged);
            merges += 1;
            ops += 1;
            continue;
        }
        if let Some((idx, a, b)) = find_split(game, &partition) {
            partition.swap_remove(idx);
            partition.push(a);
            partition.push(b);
            splits += 1;
            ops += 1;
            continue;
        }
        return MergeSplitOutcome { partition, merges, splits, converged: true };
    }
}

/// First applicable merge `(i, j)` with `i < j`.
fn find_merge<G: CharacteristicFn + ?Sized>(
    game: &G,
    partition: &[Coalition],
) -> Option<(usize, usize)> {
    for i in 0..partition.len() {
        for j in (i + 1)..partition.len() {
            let a = partition[i];
            let b = partition[j];
            let merged_share = share(game, a.union(b));
            let sa = share(game, a);
            let sb = share(game, b);
            let weakly = merged_share >= sa - TOL && merged_share >= sb - TOL;
            let strictly = merged_share > sa + TOL || merged_share > sb + TOL;
            if weakly && strictly {
                return Some((i, j));
            }
        }
    }
    None
}

/// First applicable split `(index, A, B)`.
fn find_split<G: CharacteristicFn + ?Sized>(
    game: &G,
    partition: &[Coalition],
) -> Option<(usize, Coalition, Coalition)> {
    for (idx, &c) in partition.iter().enumerate() {
        if c.len() < 2 {
            continue;
        }
        let sc = share(game, c);
        // enumerate bipartitions: subsets containing the lowest member
        // (avoids the (A,B)/(B,A) double count and the empty side)
        let Some(lowest) = c.members().next() else { continue }; // len ≥ 2 above
        for a in c.subsets() {
            if a.is_empty() || a == c || !a.contains(lowest) {
                continue;
            }
            let b = c.difference(a);
            let sa = share(game, a);
            let sb = share(game, b);
            let weakly = sa >= sc - TOL && sb >= sc - TOL;
            let strictly = sa > sc + TOL || sb > sc + TOL;
            if weakly && strictly {
                return Some((idx, a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvo_game::characteristic::TableGame;

    #[test]
    fn majority_game_merges_a_winning_pair_only() {
        // v = 1 for any coalition of ≥ 2: a pair's share is 1/2, the
        // triple's 1/3 — so exactly one merge happens.
        let g = TableGame::majority3();
        let out = merge_split(&g, 100);
        assert!(out.converged);
        assert_eq!(out.merges, 1);
        assert_eq!(out.splits, 0);
        assert_eq!(out.partition.len(), 2);
        let best = out.best_coalition(&g).unwrap();
        assert_eq!(best.len(), 2);
        assert!((share(&g, best) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn additive_game_with_unequal_weights_stays_singleton() {
        // merging dilutes the strong player's share: no merge applies
        let g = TableGame::additive(&[5.0, 1.0, 1.0]).unwrap();
        let out = merge_split(&g, 100);
        assert!(out.converged);
        assert_eq!(out.merges, 0);
        assert_eq!(out.partition.len(), 3);
    }

    #[test]
    fn additive_equal_weights_is_already_stable() {
        // all shares equal everywhere ⇒ no *strict* improvement exists
        let g = TableGame::additive(&[2.0, 2.0, 2.0]).unwrap();
        let out = merge_split(&g, 100);
        assert!(out.converged);
        assert_eq!(out.merges + out.splits, 0);
    }

    #[test]
    fn unanimity_carrier_merges() {
        let carrier = Coalition::from_members([0, 1]);
        let g = TableGame::unanimity(3, carrier).unwrap();
        let out = merge_split(&g, 100);
        assert!(out.converged);
        let best = out.best_coalition(&g).unwrap();
        assert!(carrier.is_subset_of(best), "carrier must end up together: {best}");
        // player 2 must not be inside the carrier coalition (it would
        // dilute the share 1/2 → 1/3)
        assert!(!best.contains(2));
    }

    #[test]
    fn split_rule_breaks_bad_coalitions() {
        // start from the grand coalition of the majority game: the
        // triple (share 1/3) splits into a pair (1/2) + singleton (0)?
        // No: the singleton would drop 1/3 → 0, so the split rule does
        // NOT apply (it requires both sides weakly better). The grand
        // coalition is split-stable here; verify exactly that.
        let g = TableGame::majority3();
        let out = merge_split_from(&g, vec![Coalition::grand(3)], 100);
        assert!(out.converged);
        assert_eq!(out.splits, 0);
        assert_eq!(out.partition, vec![Coalition::grand(3)]);
    }

    #[test]
    fn split_applies_when_both_sides_gain() {
        // v({0,1}) = 0 but v({0}) = v({1}) = 1: the pair must split.
        let g = TableGame::new(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let out = merge_split_from(&g, vec![Coalition::grand(2)], 100);
        assert!(out.converged);
        assert_eq!(out.splits, 1);
        assert_eq!(out.partition.len(), 2);
    }

    #[test]
    fn ops_cap_reports_non_convergence() {
        let g = TableGame::majority3();
        let out = merge_split(&g, 0);
        assert!(!out.converged);
    }

    #[test]
    #[should_panic(expected = "cover every player")]
    fn incomplete_initial_partition_panics() {
        let g = TableGame::majority3();
        let _ = merge_split_from(&g, vec![Coalition::singleton(0)], 10);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_initial_partition_panics() {
        let g = TableGame::majority3();
        let _ = merge_split_from(
            &g,
            vec![Coalition::from_members([0, 1]), Coalition::from_members([1, 2])],
            10,
        );
    }
}
