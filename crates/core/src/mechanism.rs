//! Algorithm 1 — the formation driver, generalized.
//!
//! The paper's TVOF and its RVOF baseline differ in exactly one line:
//! *which member is evicted* when the VO shrinks. The driver therefore
//! takes an [`EvictionPolicy`]; the paper's two mechanisms are
//! [`Mechanism::tvof`] and [`Mechanism::rvof`], and two extra policies
//! ([`EvictionPolicy::HighestCost`], [`EvictionPolicy::LowestSpeed`])
//! support the eviction-policy ablation.
//!
//! Likewise the final choice from the feasible list `L` is a
//! [`SelectionRule`]; the paper uses maximum payoff share, and Fig. 4
//! compares it against the payoff × reputation product.

use crate::reputation::ReputationEngine;
use crate::scenario::FormationScenario;
use crate::solve_cache::{solve_key_with_budget, CachedSolve, NoCache, SolveCache};
use crate::vo::{FormationOutcome, IterationRecord, VoRecord};
use crate::{CoreError, Result};
use gridvo_solver::branch_bound::{BranchBound, Budget, SolveStatus};
use gridvo_solver::heuristics::{self, Heuristic};
use gridvo_solver::parallel::ParallelBranchBound;
use gridvo_solver::portfolio::Portfolio;
use gridvo_solver::{repair, AssignmentInstance};
use rand::Rng;
use std::time::Instant;

/// What one IP solve produced, plus telemetry. Shared between the
/// formation driver and the fault-recovery path in
/// [`crate::execution`].
pub(crate) struct VoSolveReport {
    /// `(assignment, cost, proven_optimal)` when feasible.
    pub(crate) solved: Option<(gridvo_solver::Assignment, f64, bool)>,
    /// Search-tree nodes expanded (0 for heuristics).
    pub(crate) nodes: u64,
    /// Final-incumbent provenance (exact solvers only).
    pub(crate) incumbent_source: Option<String>,
    /// Relative optimality gap (`Some(0.0)` when proven optimal).
    /// Anything non-optimal produced under a wall-clock deadline is
    /// wall-clock-dependent, which is why `solve_vo` only ever caches
    /// proven results when a deadline is armed.
    pub(crate) gap: Option<f64>,
}

impl VoSolveReport {
    /// The cacheable image of this solve (what [`SolveCache::store`]
    /// receives on a miss), tagged with the candidate VO it solved.
    fn to_cached(&self, members: &[usize]) -> CachedSolve {
        CachedSolve {
            solved: self.solved.clone(),
            nodes: self.nodes,
            incumbent_source: self.incumbent_source.clone(),
            gap: self.gap,
            members: members.to_vec(),
            // The driver has no epoch notion; epoch-aware cache
            // owners re-stamp on store.
            epoch: 0,
        }
    }

    /// Rebuild a report from a cache hit. Deadline-truncated results
    /// are never stored, so a replayed solve is by construction not
    /// one.
    fn from_cached(c: CachedSolve) -> Self {
        VoSolveReport {
            solved: c.solved,
            nodes: c.nodes,
            incumbent_source: c.incumbent_source,
            gap: c.gap,
        }
    }
}

/// Which member leaves the VO at each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// TVOF: the member with the lowest global reputation inside the
    /// VO; ties broken uniformly at random (the paper's rule).
    LowestReputation,
    /// RVOF: a uniformly random member (the paper's baseline).
    UniformRandom,
    /// Ablation: the member with the highest average task cost.
    HighestCost,
    /// Ablation: the slowest member.
    LowestSpeed,
}

/// How the final VO is chosen from the feasible list `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionRule {
    /// Highest per-member payoff share (the paper's rule, Alg. 1 l.14).
    #[default]
    MaxPayoff,
    /// Highest payoff share × average reputation (Fig. 4's comparison).
    MaxPayoffReputationProduct,
    /// Highest average reputation.
    MaxReputation,
}

/// Which solver the driver uses for the IP each iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverChoice {
    /// Sequential exact branch-and-bound.
    Exact(BranchBound),
    /// Rayon-parallel exact branch-and-bound.
    ExactParallel(ParallelBranchBound),
    /// A fast inexact heuristic (participation-repaired).
    Heuristic(Heuristic),
    /// Racing portfolio: heuristics seed, exact search refines, all
    /// under the run's anytime [`Budget`]. Identical to `Exact` when
    /// the budget is unlimited.
    Portfolio(Portfolio),
}

impl Default for SolverChoice {
    fn default() -> Self {
        SolverChoice::Exact(BranchBound::default())
    }
}

/// Full mechanism configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormationConfig {
    /// IP solver.
    pub solver: SolverChoice,
    /// Reputation engine (Algorithm 2 settings).
    pub reputation: ReputationEngine,
    /// Final-selection rule.
    pub selection: SelectionRule,
    /// Incremental engine: carry each round's optimal assignment
    /// (repaired after eviction) into the next round's exact solve as a
    /// warm incumbent, and warm-start the power method from the
    /// previous round's reputation vector. Exactness is unaffected —
    /// warm starts only tighten the incumbent of an exact search and
    /// shift the power iteration's starting point, not its fixed point
    /// — so this is on by default; disable it to measure the cold
    /// baseline (the fig9/`BENCH_formation.json` comparison does).
    pub warm_start: bool,
}

impl Default for FormationConfig {
    fn default() -> Self {
        FormationConfig {
            solver: SolverChoice::default(),
            reputation: ReputationEngine::default(),
            selection: SelectionRule::default(),
            warm_start: true,
        }
    }
}

/// A configured formation mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mechanism {
    /// Eviction policy (the TVOF/RVOF switch).
    pub eviction: EvictionPolicy,
    /// Everything else.
    pub config: FormationConfig,
}

impl Mechanism {
    /// The paper's TVOF.
    pub fn tvof(config: FormationConfig) -> Self {
        Mechanism { eviction: EvictionPolicy::LowestReputation, config }
    }

    /// The paper's RVOF baseline.
    pub fn rvof(config: FormationConfig) -> Self {
        Mechanism { eviction: EvictionPolicy::UniformRandom, config }
    }

    /// Any eviction policy (ablations).
    pub fn with_eviction(eviction: EvictionPolicy, config: FormationConfig) -> Self {
        Mechanism { eviction, config }
    }

    /// Run Algorithm 1 on a scenario.
    ///
    /// Iterates from the grand coalition, recording every iteration
    /// and every feasible VO, until the first infeasible VO (or the
    /// VO empties). Returns the full trace plus the selected VO.
    pub fn run<R: Rng + ?Sized>(
        &self,
        scenario: &FormationScenario,
        rng: &mut R,
    ) -> Result<FormationOutcome> {
        self.run_cached(scenario, rng, &mut NoCache)
    }

    /// [`Mechanism::run`] with a solver-side memo table.
    ///
    /// Every per-round exact solve first consults `cache` under
    /// [`solve_key`] (instance content hash ⊕ warm incumbent); misses
    /// are solved and stored. Because the key covers the full solver
    /// input and the solvers are deterministic, a cached run is
    /// **trace-identical** to an uncached one — same assignments,
    /// costs, `nodes` and `incumbent_source` telemetry — except for
    /// wall-clock timings. The `gridvo-service` daemon passes its
    /// shared cache here; plain library callers use [`Mechanism::run`].
    pub fn run_cached<R: Rng + ?Sized>(
        &self,
        scenario: &FormationScenario,
        rng: &mut R,
        cache: &mut dyn SolveCache,
    ) -> Result<FormationOutcome> {
        self.run_cached_with_budget(scenario, rng, cache, &Budget::unlimited())
    }

    /// [`Mechanism::run_cached`] under an anytime [`Budget`] shared by
    /// every per-round solve: each solve honors the same absolute
    /// wall-clock deadline and node cap, so the whole formation run —
    /// not just one round — respects the caller's deadline (up to one
    /// solver bound-check interval plus non-solver overhead). Rounds
    /// whose solve was truncated carry their anytime incumbent with
    /// `optimal = false` and a positive `gap`. Deadline-truncated
    /// solves are never stored in `cache` (they are wall-clock-
    /// dependent); node-cap truncation is deterministic and cached
    /// under a cap-tagged key. With [`Budget::unlimited`] this is
    /// exactly [`Mechanism::run_cached`].
    pub fn run_cached_with_budget<R: Rng + ?Sized>(
        &self,
        scenario: &FormationScenario,
        rng: &mut R,
        cache: &mut dyn SolveCache,
        budget: &Budget,
    ) -> Result<FormationOutcome> {
        let started = Instant::now();
        let mut members: Vec<usize> = (0..scenario.gsp_count()).collect();
        let mut iterations = Vec::new();
        let mut feasible_vos: Vec<VoRecord> = Vec::new();

        // Incremental-engine state: round k + 1 reuses round k's work.
        // `carry` is (previous members, previous optimal assignment,
        // the member evicted between the rounds); `prev_reputation` is
        // the previous round's score vector for power-method warm
        // starts. Both only feed *starting points* — an exact search's
        // result and the power method's fixed point are start-
        // independent, so the trace matches a cold run (see
        // tests/differential_warm_cold.rs).
        let mut carry: Option<(Vec<usize>, gridvo_solver::Assignment, usize)> = None;
        let mut prev_reputation: Option<crate::reputation::VoReputation> = None;

        let mut iteration = 0;
        while !members.is_empty() {
            let solve_started = Instant::now();
            let warm_seed = match (&carry, self.config.warm_start) {
                (Some((prev_members, prev_assignment, evicted)), true) => prev_members
                    .iter()
                    .position(|m| m == evicted)
                    .map(|local| (prev_assignment, local)),
                _ => None,
            };
            let report = self.solve_vo(scenario, &members, warm_seed, cache, budget);
            let solve_seconds = solve_started.elapsed().as_secs_f64();

            let rep_start: Option<Vec<f64>> = match (&prev_reputation, self.config.warm_start) {
                (Some(prev), true) => {
                    Some(members.iter().map(|&m| prev.score_of(m).unwrap_or(0.0)).collect())
                }
                _ => None,
            };
            let reputation = self.config.reputation.compute_with_start(
                scenario.trust(),
                &members,
                rep_start.as_deref(),
            )?;

            let feasible = report.solved.is_some();
            let (cost, payoff_share) = match &report.solved {
                Some((_, cost, _)) => {
                    let value = (scenario.payment() - cost).max(0.0);
                    (Some(*cost), Some(value / members.len() as f64))
                }
                None => (None, None),
            };

            // Algorithm 1 exits at the first infeasible VO.
            let evicted = if feasible && members.len() > 1 {
                Some(self.pick_eviction(scenario, &members, &reputation, rng)?)
            } else {
                None
            };

            if let Some((assignment, cost, optimal)) = report.solved {
                let value = (scenario.payment() - cost).max(0.0);
                carry = evicted.map(|g| (members.clone(), assignment.clone(), g));
                feasible_vos.push(VoRecord {
                    members: members.clone(),
                    assignment,
                    cost,
                    value,
                    payoff_share: value / members.len() as f64,
                    avg_reputation: reputation.average,
                    optimal,
                    gap: report.gap,
                });
            }

            iterations.push(IterationRecord {
                iteration,
                members: members.clone(),
                feasible,
                cost,
                payoff_share,
                avg_reputation: reputation.average,
                reputation_scores: reputation.scores.clone(),
                evicted,
                solve_seconds,
                nodes: report.nodes,
                incumbent_source: report.incumbent_source,
                gap: report.gap,
                power_iterations: reputation.iterations,
            });
            prev_reputation = Some(reputation);

            match evicted {
                Some(g) => members.retain(|&m| m != g),
                None => break,
            }
            iteration += 1;
        }

        let selected = self.select(&feasible_vos).cloned();
        Ok(FormationOutcome {
            iterations,
            feasible_vos,
            selected,
            total_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// Solve the IP for a candidate VO, optionally warm-started with
    /// the previous round's assignment (`carry` = that assignment plus
    /// the evicted member's local index within the previous VO), going
    /// through the memo table first.
    fn solve_vo(
        &self,
        scenario: &FormationScenario,
        members: &[usize],
        carry: Option<(&gridvo_solver::Assignment, usize)>,
        cache: &mut dyn SolveCache,
        budget: &Budget,
    ) -> VoSolveReport {
        let Some(inst): Option<AssignmentInstance> = scenario.instance_for(members) else {
            return VoSolveReport { solved: None, nodes: 0, incumbent_source: None, gap: None };
        };
        let warm =
            carry.and_then(|(prev, evicted)| repair::repair_after_eviction(prev, evicted, &inst));
        // A finite node cap changes what a truncated solve returns, so
        // it is part of the key (None ⇒ the pre-budget key values).
        // The wall-clock deadline is NOT: it makes results
        // non-reproducible, so deadline-hit solves are simply never
        // stored. Cached entries from unlimited runs remain valid
        // answers under any deadline — serving a cached proven optimum
        // early is strictly better than truncating a fresh search.
        let node_cap = (budget.max_nodes != u64::MAX).then_some(budget.max_nodes);
        let key = solve_key_with_budget(&inst, warm.as_ref(), node_cap);
        if let Some(hit) = cache.lookup(key) {
            return VoSolveReport::from_cached(hit);
        }
        let report = self.solve_instance_with_budget(&inst, warm.as_ref(), budget);
        // Without a deadline every result (including node-cap
        // truncation and Unknown) is a deterministic function of the
        // key. With one armed, anything short of a proven optimum —
        // an anytime incumbent, or an empty result that may be a
        // timed-out Unknown rather than an infeasibility proof —
        // depends on wall-clock luck and is never stored.
        if budget.deadline.is_none() || matches!(&report.solved, Some((_, _, true))) {
            cache.store(key, &report.to_cached(members));
        }
        report
    }

    /// Solve one assignment instance with the configured solver,
    /// optionally seeded with a warm incumbent. Also the re-solve
    /// primitive of the fault-recovery path ([`crate::execution`]).
    pub(crate) fn solve_instance(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&gridvo_solver::Assignment>,
    ) -> VoSolveReport {
        self.solve_instance_with_budget(inst, warm, &Budget::unlimited())
    }

    /// [`Mechanism::solve_instance`] under an anytime budget.
    pub(crate) fn solve_instance_with_budget(
        &self,
        inst: &AssignmentInstance,
        warm: Option<&gridvo_solver::Assignment>,
        budget: &Budget,
    ) -> VoSolveReport {
        let from_status = |status: SolveStatus| -> VoSolveReport {
            match status {
                SolveStatus::Optimal(o) | SolveStatus::Feasible(o) => VoSolveReport {
                    nodes: o.nodes,
                    incumbent_source: Some(o.incumbent_source.as_str().to_string()),
                    gap: o.gap,
                    solved: Some((o.assignment, o.cost, o.optimal)),
                },
                SolveStatus::Infeasible { nodes } | SolveStatus::Unknown { nodes } => {
                    VoSolveReport { solved: None, nodes, incumbent_source: None, gap: None }
                }
            }
        };
        match self.config.solver {
            SolverChoice::Exact(bb) => from_status(bb.solve_status_with_budget(inst, warm, budget)),
            SolverChoice::ExactParallel(pbb) => {
                from_status(pbb.solve_status_with_budget(inst, warm, budget))
            }
            SolverChoice::Portfolio(p) => {
                from_status(p.solve_status_with_budget(inst, warm, budget))
            }
            SolverChoice::Heuristic(kind) => {
                let solved = heuristics::run(kind, inst).map(|a| {
                    let cost = a.total_cost(inst);
                    (a, cost, false)
                });
                VoSolveReport { solved, nodes: 0, incumbent_source: None, gap: None }
            }
        }
    }

    /// The member leaving the VO this round. Errors (instead of
    /// panicking — a served request must not kill a daemon worker) on
    /// the degenerate inputs the driver itself never produces: an
    /// empty member list or an empty reputation tie set.
    fn pick_eviction<R: Rng + ?Sized>(
        &self,
        scenario: &FormationScenario,
        members: &[usize],
        reputation: &crate::reputation::VoReputation,
        rng: &mut R,
    ) -> Result<usize> {
        let empty = CoreError::EmptyVo { context: "eviction from an empty VO" };
        match self.eviction {
            EvictionPolicy::LowestReputation => {
                let lows = reputation.lowest_members();
                if lows.is_empty() {
                    return Err(CoreError::EmptyVo { context: "no lowest-reputation member" });
                }
                Ok(lows[rng.gen_range(0..lows.len())])
            }
            EvictionPolicy::UniformRandom => {
                if members.is_empty() {
                    return Err(empty);
                }
                Ok(members[rng.gen_range(0..members.len())])
            }
            EvictionPolicy::HighestCost => {
                let inst = scenario.instance();
                members
                    .iter()
                    .max_by(|&&a, &&b| {
                        let ca: f64 = (0..inst.tasks()).map(|t| inst.cost(t, a)).sum();
                        let cb: f64 = (0..inst.tasks()).map(|t| inst.cost(t, b)).sum();
                        ca.total_cmp(&cb)
                    })
                    .copied()
                    .ok_or(empty)
            }
            EvictionPolicy::LowestSpeed => {
                let gsps = scenario.gsps();
                members
                    .iter()
                    .min_by(|&&a, &&b| gsps[a].speed_gflops.total_cmp(&gsps[b].speed_gflops))
                    .copied()
                    .ok_or(empty)
            }
        }
    }

    fn select<'a>(&self, vos: &'a [VoRecord]) -> Option<&'a VoRecord> {
        let key = |v: &VoRecord| -> f64 {
            match self.config.selection {
                SelectionRule::MaxPayoff => v.payoff_share,
                SelectionRule::MaxPayoffReputationProduct => v.payoff_reputation_product(),
                SelectionRule::MaxReputation => v.avg_reputation,
            }
        };
        vos.iter().max_by(|a, b| key(a).total_cmp(&key(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsp::Gsp;
    use gridvo_trust::TrustGraph;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    /// 4 GSPs, 8 tasks; GSP 3 is distrusted and expensive.
    fn scenario() -> FormationScenario {
        let gsps: Vec<Gsp> = (0..4).map(|i| Gsp::new(i, 100.0 - 10.0 * i as f64)).collect();
        let n = 8;
        let mut cost = Vec::new();
        let mut time = Vec::new();
        for t in 0..n {
            for g in 0..4usize {
                let base = 1.0 + (t % 3) as f64;
                let premium = if g == 3 { 10.0 } else { g as f64 * 0.5 };
                cost.push(base + premium);
                time.push(1.0 + 0.2 * g as f64);
            }
        }
        let inst = gridvo_solver::AssignmentInstance::new(n, 4, cost, time, 20.0, 200.0).unwrap();
        let mut trust = TrustGraph::new(4);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    trust.set_trust(i, j, 1.0);
                }
            }
        }
        trust.set_trust(3, 0, 1.0); // 3 trusts others but is untrusted
        FormationScenario::new(gsps, trust, inst).unwrap()
    }

    #[test]
    fn tvof_runs_and_selects_a_vo() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(42);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        assert!(!out.iterations.is_empty());
        let vo = out.selected.clone().expect("grand coalition is feasible here");
        assert!(vo.payoff_share > 0.0);
        assert!(vo.optimal);
        // selected payoff equals the max over L
        assert_eq!(Some(vo.payoff_share), out.best_payoff_share());
    }

    #[test]
    fn tvof_evicts_the_distrusted_gsp_first() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(1);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        assert_eq!(out.iterations[0].evicted, Some(3), "GSP 3 is untrusted");
    }

    #[test]
    fn tvof_reputation_never_decreases_along_iterations() {
        // The paper's Figs. 5–6 observation: evicting the least
        // reputable member weakly raises average reputation.
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(2);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        // avg reputation of a |C|-member VO is always 1/|C| by eq. (7)
        // (scores sum to 1), so instead check per-member minimum score
        // times size, i.e. fairness of the distribution: the *minimum*
        // reputation share should not collapse as the VO shrinks.
        for w in out.iterations.windows(2) {
            assert!(w[1].members.len() < w[0].members.len());
        }
    }

    #[test]
    fn rvof_evicts_random_members() {
        let s = scenario();
        // Across seeds, RVOF's first eviction should not always be GSP 3.
        let mut saw_other = false;
        for seed in 0..20 {
            let mut rng = TestRng::seed_from_u64(seed);
            let out = Mechanism::rvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
            if out.iterations[0].evicted != Some(3) {
                saw_other = true;
                break;
            }
        }
        assert!(saw_other, "RVOF never evicted anyone but GSP 3 across 20 seeds");
    }

    #[test]
    fn iteration_trace_shrinks_to_singleton_or_infeasible() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(3);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        let last = out.iterations.last().unwrap();
        assert!(last.evicted.is_none());
        assert!(!last.feasible || last.members.len() == 1);
    }

    #[test]
    fn heuristic_solver_also_forms_vos() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(4);
        let cfg = FormationConfig {
            solver: SolverChoice::Heuristic(Heuristic::GreedyCost),
            ..Default::default()
        };
        let out = Mechanism::tvof(cfg).run(&s, &mut rng).unwrap();
        let vo = out.selected.expect("greedy finds feasible VOs here");
        assert!(!vo.optimal, "heuristic solutions are not proven optimal");
    }

    #[test]
    fn parallel_solver_matches_sequential_selection_value() {
        let s = scenario();
        let mut rng1 = TestRng::seed_from_u64(5);
        let mut rng2 = TestRng::seed_from_u64(5);
        let seq = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng1).unwrap();
        let par = Mechanism::tvof(FormationConfig {
            solver: SolverChoice::ExactParallel(ParallelBranchBound::default()),
            ..Default::default()
        })
        .run(&s, &mut rng2)
        .unwrap();
        let a = seq.selected.unwrap();
        let b = par.selected.unwrap();
        assert!((a.payoff_share - b.payoff_share).abs() < 1e-9);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn selection_rules_pick_different_vos_when_they_should() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(6);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        // MaxReputation must pick a VO whose avg reputation is maximal in L
        let max_rep =
            out.feasible_vos.iter().map(|v| v.avg_reputation).fold(f64::NEG_INFINITY, f64::max);
        let mech = Mechanism::tvof(FormationConfig {
            selection: SelectionRule::MaxReputation,
            ..Default::default()
        });
        let picked = mech.select(&out.feasible_vos).unwrap();
        assert!((picked.avg_reputation - max_rep).abs() < 1e-12);
    }

    #[test]
    fn infeasible_scenario_selects_nothing() {
        // Payment far below any assignment cost.
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 10.0)];
        let inst =
            gridvo_solver::AssignmentInstance::new(2, 2, vec![50.0; 4], vec![1.0; 4], 10.0, 5.0)
                .unwrap();
        let s = FormationScenario::new(gsps, TrustGraph::new(2), inst).unwrap();
        let mut rng = TestRng::seed_from_u64(7);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        assert!(out.selected.is_none());
        assert!(out.feasible_vos.is_empty());
        assert_eq!(out.iterations.len(), 1, "Algorithm 1 stops at first infeasibility");
    }

    #[test]
    fn ablation_policies_run() {
        let s = scenario();
        for policy in [EvictionPolicy::HighestCost, EvictionPolicy::LowestSpeed] {
            let mut rng = TestRng::seed_from_u64(8);
            let out = Mechanism::with_eviction(policy, FormationConfig::default())
                .run(&s, &mut rng)
                .unwrap();
            assert!(out.selected.is_some());
        }
        // HighestCost must evict GSP 3 (premium 10) first.
        let mut rng = TestRng::seed_from_u64(9);
        let out = Mechanism::with_eviction(EvictionPolicy::HighestCost, FormationConfig::default())
            .run(&s, &mut rng)
            .unwrap();
        assert_eq!(out.iterations[0].evicted, Some(3));
        // LowestSpeed must evict GSP 3 (slowest: 70 GFLOPS) first.
        let mut rng = TestRng::seed_from_u64(10);
        let out = Mechanism::with_eviction(EvictionPolicy::LowestSpeed, FormationConfig::default())
            .run(&s, &mut rng)
            .unwrap();
        assert_eq!(out.iterations[0].evicted, Some(3));
    }

    #[test]
    fn timings_recorded() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(11);
        let out = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        assert!(out.total_seconds >= 0.0);
        for it in &out.iterations {
            assert!(it.solve_seconds >= 0.0);
        }
    }
}
