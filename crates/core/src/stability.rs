//! Empirical audits of Theorems 1 and 2.
//!
//! Theorem 1 claims the VO produced by TVOF is **individually stable**
//! (Definition 1): no member can leave without making some member —
//! possibly itself — worse off. Theorem 2 claims the selected VO is
//! **Pareto optimal** over the feasible list `L`. Both proofs in the
//! paper are sketches; these audits check the claims instance by
//! instance, re-solving the IP for each single-member departure.
//!
//! The preference relation `⪰_i` used by the audit is lexicographic on
//! (payoff share, average reputation): a GSP first wants a bigger
//! share, then (on near-ties) a more reputable VO — the operational
//! reading of the paper's bicriteria objective (eqs. (16)–(17)).

use crate::mechanism::{FormationConfig, Mechanism};
use crate::pareto;
use crate::reputation::ReputationEngine;
use crate::scenario::FormationScenario;
use crate::vo::{FormationOutcome, VoRecord};
use crate::Result;
use gridvo_solver::branch_bound::BranchBound;

/// Verdict of the Theorem-1 audit on one VO.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilityAudit {
    /// No departure is unanimously weakly preferred: individually
    /// stable.
    Stable,
    /// `member`'s departure leaves every member (including itself)
    /// weakly better off — an instability witness.
    Unstable {
        /// The member whose exit nobody minds.
        member: usize,
        /// Payoff share of the VO without `member` (None = infeasible).
        reduced_payoff: Option<f64>,
        /// Average reputation of the reduced VO.
        reduced_reputation: f64,
    },
}

/// Tolerance for payoff comparisons in the audits.
const TOL: f64 = 1e-9;

/// Audit individual stability (Definition 1) of `vo` within
/// `scenario`, re-solving the IP for each departure with an exact
/// branch-and-bound.
///
/// For each member `G_i`, form `C' = C ∖ {G_i}` and check whether
/// **all** members weakly prefer `C'`:
///
/// * a *remaining* member compares its payoff share (and reputation on
///   near-ties) in `C'` vs `C`; an infeasible `C'` makes remaining
///   members strictly worse (share 0 vs positive);
/// * the *departing* member ends up alone with payoff 0, so it weakly
///   prefers leaving only when its current share is ≤ 0.
pub fn audit_individual_stability(
    scenario: &FormationScenario,
    vo: &VoRecord,
) -> Result<StabilityAudit> {
    let engine = ReputationEngine::default();
    let solver = BranchBound::default();
    if vo.members.len() <= 1 {
        return Ok(StabilityAudit::Stable);
    }
    for &leaver in &vo.members {
        let reduced: Vec<usize> = vo.members.iter().copied().filter(|&m| m != leaver).collect();
        let reduced_rep = engine.compute(scenario.trust(), &reduced)?.average;
        let reduced_payoff = scenario
            .instance_for(&reduced)
            .and_then(|inst| solver.solve(&inst))
            .map(|o| (scenario.payment() - o.cost).max(0.0) / reduced.len() as f64);

        // Departing member: alone it earns nothing (a single GSP is
        // assumed unable to host the program — the paper's premise).
        let leaver_prefers_leaving = vo.payoff_share <= TOL;
        if !leaver_prefers_leaving {
            continue;
        }
        // Remaining members: weak preference for the reduced VO.
        let all_remaining_fine = match reduced_payoff {
            None => false, // infeasible: remaining members get nothing
            Some(p) => {
                p > vo.payoff_share + TOL
                    || ((p - vo.payoff_share).abs() <= TOL
                        && reduced_rep >= vo.avg_reputation - TOL)
            }
        };
        if all_remaining_fine {
            return Ok(StabilityAudit::Unstable {
                member: leaver,
                reduced_payoff,
                reduced_reputation: reduced_rep,
            });
        }
    }
    Ok(StabilityAudit::Stable)
}

/// Audit Theorem 2: the selected VO of `outcome` is Pareto optimal
/// over `L` in (payoff share, average reputation). Returns `None` when
/// nothing was selected.
pub fn audit_pareto_optimality(outcome: &FormationOutcome) -> Option<bool> {
    let selected = outcome.selected.as_ref()?;
    let index = outcome.feasible_vos.iter().position(|v| v.members == selected.members)?;
    Some(pareto::is_pareto_optimal(&outcome.feasible_vos, index))
}

/// Run TVOF and both audits in one call (used by the integration tests
/// and the stability experiment binary).
pub fn run_and_audit<R: rand::Rng + ?Sized>(
    scenario: &FormationScenario,
    config: FormationConfig,
    rng: &mut R,
) -> Result<(FormationOutcome, Option<StabilityAudit>, Option<bool>)> {
    let outcome = Mechanism::tvof(config).run(scenario, rng)?;
    let stability = match &outcome.selected {
        Some(vo) => Some(audit_individual_stability(scenario, vo)?),
        None => None,
    };
    let pareto_ok = audit_pareto_optimality(&outcome);
    Ok((outcome, stability, pareto_ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsp::Gsp;
    use gridvo_trust::TrustGraph;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    fn scenario() -> FormationScenario {
        let gsps: Vec<Gsp> = (0..4).map(|i| Gsp::new(i, 100.0)).collect();
        let n = 8;
        let mut cost = Vec::new();
        let mut time = Vec::new();
        for t in 0..n {
            for g in 0..4usize {
                cost.push(1.0 + ((t * 5 + g * 3) % 7) as f64);
                time.push(1.0 + 0.1 * g as f64);
            }
        }
        let inst = gridvo_solver::AssignmentInstance::new(n, 4, cost, time, 10.0, 200.0).unwrap();
        let mut trust = TrustGraph::new(4);
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    trust.set_trust(i, j, 1.0 / (1.0 + (i as f64 - j as f64).abs()));
                }
            }
        }
        FormationScenario::new(gsps, trust, inst).unwrap()
    }

    #[test]
    fn tvof_outcome_is_individually_stable() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(0);
        let (outcome, stability, _) =
            run_and_audit(&s, FormationConfig::default(), &mut rng).unwrap();
        assert!(outcome.selected.is_some());
        assert_eq!(stability, Some(StabilityAudit::Stable));
    }

    #[test]
    fn tvof_outcome_is_pareto_optimal() {
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(1);
        let (_, _, pareto_ok) = run_and_audit(&s, FormationConfig::default(), &mut rng).unwrap();
        assert_eq!(pareto_ok, Some(true), "Theorem 2 violated on this instance");
    }

    #[test]
    fn singleton_vo_is_stable() {
        let s = scenario();
        let vo = VoRecord {
            members: vec![2],
            assignment: gridvo_solver::Assignment::new(vec![0; 8]),
            cost: 5.0,
            value: 195.0,
            payoff_share: 195.0,
            avg_reputation: 1.0,
            optimal: true,
            gap: Some(0.0),
        };
        assert_eq!(audit_individual_stability(&s, &vo).unwrap(), StabilityAudit::Stable);
    }

    #[test]
    fn positive_share_blocks_departure() {
        // Any VO with strictly positive shares is stable under this
        // preference: the departing member would fall to zero.
        let s = scenario();
        let mut rng = TestRng::seed_from_u64(2);
        let outcome = Mechanism::tvof(FormationConfig::default()).run(&s, &mut rng).unwrap();
        for vo in &outcome.feasible_vos {
            if vo.payoff_share > 1e-6 {
                assert_eq!(audit_individual_stability(&s, vo).unwrap(), StabilityAudit::Stable);
            }
        }
    }

    #[test]
    fn pareto_audit_none_without_selection() {
        let outcome = FormationOutcome {
            iterations: vec![],
            feasible_vos: vec![],
            selected: None,
            total_seconds: 0.0,
        };
        assert_eq!(audit_pareto_optimality(&outcome), None);
    }
}
