//! VO execution under injected faults, and the recovery policy.
//!
//! Formation (Algorithm 1) selects a VO; this module *runs* it. A
//! [`FaultPlan`] — a deterministic, pre-drawn schedule of member
//! faults — is replayed against the selected VO round by round:
//!
//! * **crash** — the member disappears; its tasks are orphaned;
//! * **slowdown** — the member's execution times are multiplied by a
//!   factor, eating deadline slack;
//! * **silent drop** — the member quietly fails to execute some of its
//!   tasks, which must be redone elsewhere.
//!
//! Recovery is *repair-first*: orphaned tasks are greedily re-homed
//! onto the survivors ([`gridvo_solver::repair`] for crashes, the same
//! greedy rule for drops). When the greedy repair is infeasible the
//! engine falls back to a **full re-solve** of the reduced IP with the
//! mechanism's configured solver, and when even that is infeasible the
//! VO is **abandoned** — the program cannot be completed. After every
//! membership change the power method is re-run on the surviving trust
//! subgraph, so post-failure reputations are part of the telemetry.
//!
//! The key invariant (asserted by `tests/differential_faults.rs`):
//! executing against an **empty** fault plan is bit-identical to the
//! formation output — no solver call, no re-costing, no RNG draw.

use crate::mechanism::Mechanism;
use crate::scenario::FormationScenario;
use crate::vo::VoRecord;
use crate::{CoreError, FormationOutcome, Result};
use gridvo_solver::{repair, Assignment, AssignmentInstance};
use rand::Rng;
use serde::{de_field, Deserialize, Error, Serialize, Value};
use std::time::Instant;

/// What goes wrong with one GSP in one execution round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The GSP disappears; all of its tasks are orphaned and it can
    /// never rejoin the VO.
    Crash,
    /// The GSP's execution times are multiplied by `factor` (> 1 slows
    /// it down). Factors compound across rounds.
    Slowdown {
        /// Multiplicative time factor (finite, > 0).
        factor: f64,
    },
    /// The GSP silently drops its first `tasks` assigned tasks; they
    /// must be re-executed. Dropping everything it holds is treated as
    /// a crash (the member contributed nothing).
    SilentDrop {
        /// Number of the member's tasks dropped (≥ 1).
        tasks: usize,
    },
}

impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        let tag = |s: &str| ("kind".to_string(), Value::Str(s.to_string()));
        match self {
            FaultKind::Crash => Value::Object(vec![tag("crash")]),
            FaultKind::Slowdown { factor } => {
                Value::Object(vec![tag("slowdown"), ("factor".to_string(), factor.to_value())])
            }
            FaultKind::SilentDrop { tasks } => {
                Value::Object(vec![tag("silent_drop"), ("tasks".to_string(), tasks.to_value())])
            }
        }
    }
}

impl Deserialize for FaultKind {
    fn from_value(v: &Value) -> std::result::Result<Self, Error> {
        let kind: String = de_field(v, "kind")?;
        match kind.as_str() {
            "crash" => Ok(FaultKind::Crash),
            "slowdown" => Ok(FaultKind::Slowdown { factor: de_field(v, "factor")? }),
            "silent_drop" => Ok(FaultKind::SilentDrop { tasks: de_field(v, "tasks")? }),
            other => Err(Error::custom(format!("unknown fault kind {other:?}"))),
        }
    }
}

/// One scheduled fault: `gsp` suffers `kind` in execution round
/// `round`. Events targeting GSPs no longer in the VO are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Execution round (0-based) at which the fault strikes.
    pub round: usize,
    /// Global id of the faulted GSP.
    pub gsp: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic fault schedule: the full list of faults an
/// execution will face, drawn up front (seeded) so replays are exact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> std::result::Result<Self, Error> {
        let events: Vec<FaultEvent> = de_field(v, "events")?;
        Ok(FaultPlan::new(events))
    }
}

impl FaultPlan {
    /// Build a plan from events, stably sorted by round (events within
    /// a round keep their given order — the replay order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.round);
        FaultPlan { events }
    }

    /// The no-fault plan.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Whether the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of execution rounds the plan spans (`last round + 1`;
    /// 0 for the empty plan).
    pub fn horizon(&self) -> usize {
        self.events.iter().map(|e| e.round + 1).max().unwrap_or(0)
    }

    /// All events, sorted by round.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events striking in one round, in replay order.
    pub fn events_at(&self, round: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }
}

/// How one fault was absorbed (the per-recovery `recovery_kind`
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The fault required no reassignment (e.g. a slowdown within the
    /// current assignment's deadline slack).
    Absorbed,
    /// Greedy repair re-homed the affected tasks onto survivors.
    Repair,
    /// The reduced IP was re-solved from scratch.
    Resolve,
    /// No feasible recovery existed: the VO disbands.
    Abandon,
}

impl RecoveryKind {
    /// Stable lower-case name (also the serialized form).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryKind::Absorbed => "absorbed",
            RecoveryKind::Repair => "repair",
            RecoveryKind::Resolve => "resolve",
            RecoveryKind::Abandon => "abandon",
        }
    }
}

impl Serialize for RecoveryKind {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for RecoveryKind {
    fn from_value(v: &Value) -> std::result::Result<Self, Error> {
        let s = String::from_value(v)?;
        match s.as_str() {
            "absorbed" => Ok(RecoveryKind::Absorbed),
            "repair" => Ok(RecoveryKind::Repair),
            "resolve" => Ok(RecoveryKind::Resolve),
            "abandon" => Ok(RecoveryKind::Abandon),
            other => Err(Error::custom(format!("unknown recovery kind {other:?}"))),
        }
    }
}

/// Telemetry of one fault-recovery episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Execution round of the fault.
    pub round: usize,
    /// Global id of the faulted GSP.
    pub gsp: usize,
    /// The fault itself.
    pub fault: FaultKind,
    /// How (whether) execution recovered.
    pub recovery_kind: RecoveryKind,
    /// Tasks that had to move (0 for absorbed slowdowns).
    pub orphaned_tasks: usize,
    /// Total assignment cost before the fault.
    pub cost_before: f64,
    /// Total assignment cost after recovery (= `cost_before` when the
    /// VO was abandoned or the fault was absorbed).
    pub cost_after: f64,
    /// `cost_after − cost_before` — the repair cost delta.
    pub cost_delta: f64,
    /// Branch-and-bound nodes expanded by re-solves during this
    /// recovery (0 for pure repairs and absorbed faults).
    pub resolve_nodes: u64,
    /// VO size after the recovery.
    pub survivors: usize,
    /// Average reputation of the surviving members, re-computed on
    /// the surviving trust subgraph (the power method re-runs after
    /// every recovery).
    pub avg_reputation_after: f64,
    /// Wall-clock seconds this recovery took (recovery latency).
    pub seconds: f64,
}

/// Terminal state of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStatus {
    /// Every fault was recovered (or none struck); the program ran to
    /// completion.
    Completed {
        /// Whether any fault forced a reassignment or membership
        /// change (degraded-but-feasible).
        degraded: bool,
    },
    /// A fault could not be recovered; the VO disbanded in `round`.
    Abandoned {
        /// Round of the unrecoverable fault.
        round: usize,
    },
}

impl Serialize for ExecutionStatus {
    fn to_value(&self) -> Value {
        let tag = |s: &str| ("status".to_string(), Value::Str(s.to_string()));
        match self {
            ExecutionStatus::Completed { degraded } => {
                Value::Object(vec![tag("completed"), ("degraded".to_string(), degraded.to_value())])
            }
            ExecutionStatus::Abandoned { round } => {
                Value::Object(vec![tag("abandoned"), ("round".to_string(), round.to_value())])
            }
        }
    }
}

impl Deserialize for ExecutionStatus {
    fn from_value(v: &Value) -> std::result::Result<Self, Error> {
        let status: String = de_field(v, "status")?;
        match status.as_str() {
            "completed" => Ok(ExecutionStatus::Completed { degraded: de_field(v, "degraded")? }),
            "abandoned" => Ok(ExecutionStatus::Abandoned { round: de_field(v, "round")? }),
            other => Err(Error::custom(format!("unknown execution status {other:?}"))),
        }
    }
}

/// Full result of executing a selected VO against a fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Members at the start of execution (the selected VO).
    pub initial_members: Vec<usize>,
    /// Members still standing at the end.
    pub final_members: Vec<usize>,
    /// Assignment cost at the start (the formation optimum).
    pub initial_cost: f64,
    /// Assignment cost at the end (last feasible cost when abandoned).
    pub final_cost: f64,
    /// Per-member payoff share at the start.
    pub initial_payoff_share: f64,
    /// Per-member payoff share at the end (0 when abandoned).
    pub final_payoff_share: f64,
    /// `final_payoff_share / initial_payoff_share` (1 for fault-free
    /// runs, 0 when abandoned).
    pub payoff_retention: f64,
    /// The final task assignment onto `final_members` (local indices);
    /// `None` when the VO was abandoned.
    pub final_assignment: Option<Assignment>,
    /// Accumulated per-GSP slowdown factors (global ids; 1.0 =
    /// unslowed). Together with `final_members` this reconstructs the
    /// instance the final assignment must be feasible on.
    pub time_factors: Vec<f64>,
    /// One record per fault that struck a live member, in replay
    /// order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Terminal state.
    pub status: ExecutionStatus,
    /// Execution rounds replayed (the plan's horizon).
    pub rounds: usize,
    /// Wall-clock seconds for the whole execution phase.
    pub total_seconds: f64,
}

impl ExecutionReport {
    /// Whether the program ran to completion.
    pub fn completed(&self) -> bool {
        matches!(self.status, ExecutionStatus::Completed { .. })
    }

    /// Faults that were successfully recovered (everything but
    /// abandonment).
    pub fn recovered_count(&self) -> usize {
        self.recoveries.iter().filter(|r| r.recovery_kind != RecoveryKind::Abandon).count()
    }

    /// Zero every wall-clock timing field, leaving only the
    /// deterministic content. Served responses are canonicalized this
    /// way so identical requests are byte-identical (and cache replays
    /// indistinguishable from fresh solves).
    pub fn zero_timings(&mut self) {
        self.total_seconds = 0.0;
        for r in &mut self.recoveries {
            r.seconds = 0.0;
        }
    }

    /// Derive the execution receipts this report attests to:
    ///
    /// * one **failure** receipt per non-absorbed recovery (the
    ///   faulted GSP misbehaved; absorbed slowdowns never surfaced),
    ///   witnessed by the other initial members and weighted by the
    ///   payoff share that was at stake when execution started;
    /// * one **success** receipt per final member when the program
    ///   completed, witnessed by its final co-members and weighted by
    ///   the payoff share actually earned.
    ///
    /// Purely a projection of the report — deterministic, no RNG —
    /// so replaying an execution replays its receipts bit-for-bit.
    pub fn receipts(&self) -> Vec<ExecutionReceipt> {
        let mut out = Vec::new();
        for rec in &self.recoveries {
            if rec.recovery_kind == RecoveryKind::Absorbed {
                continue;
            }
            let witnesses: Vec<usize> =
                self.initial_members.iter().copied().filter(|&g| g != rec.gsp).collect();
            out.push(ExecutionReceipt::new(
                rec.round,
                rec.gsp,
                false,
                self.initial_payoff_share.max(0.0),
                witnesses,
            ));
        }
        if self.completed() {
            for &g in &self.final_members {
                let witnesses: Vec<usize> =
                    self.final_members.iter().copied().filter(|&w| w != g).collect();
                out.push(ExecutionReceipt::new(
                    self.rounds,
                    g,
                    true,
                    self.final_payoff_share.max(0.0),
                    witnesses,
                ));
            }
        }
        out
    }
}

/// A signed-shape attestation of one GSP's conduct in one execution
/// round: who (`gsp`), what (`success`), how much was at stake
/// (`reward`), who can attest (`witnesses`), sealed by a content
/// `digest` standing in for a signature. Receipts feed
/// [`gridvo_trust::beta::BetaLedger`]: every witness contributes one
/// reward-weighted Beta observation about the subject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReceipt {
    /// Execution round the conduct was observed in.
    pub round: usize,
    /// Global id of the GSP the receipt is about.
    pub gsp: usize,
    /// Delivered (`true`) or failed (`false`).
    pub success: bool,
    /// Task reward backing the observation (≥ 0); the Beta update
    /// weighs the evidence by `reward / (reward + mean reward)`.
    pub reward: f64,
    /// Co-members attesting to the conduct (never includes `gsp`).
    pub witnesses: Vec<usize>,
    /// FNV-1a content digest over every other field — the
    /// signature-shaped seal. [`ExecutionReceipt::verify`] recomputes
    /// it; a mismatch means the receipt was tampered with or
    /// hand-rolled incorrectly.
    pub digest: u64,
}

impl ExecutionReceipt {
    /// Build a receipt and seal it with its content digest.
    pub fn new(
        round: usize,
        gsp: usize,
        success: bool,
        reward: f64,
        witnesses: Vec<usize>,
    ) -> Self {
        let digest = Self::digest_of(round, gsp, success, reward, &witnesses);
        ExecutionReceipt { round, gsp, success, reward, witnesses, digest }
    }

    /// The content digest a well-formed receipt must carry.
    pub fn digest_of(
        round: usize,
        gsp: usize,
        success: bool,
        reward: f64,
        witnesses: &[usize],
    ) -> u64 {
        let mut h = gridvo_solver::instance::Fnv1a::new();
        h.write(b"execution-receipt-v1");
        h.write_u64(round as u64);
        h.write_u64(gsp as u64);
        h.write_u64(success as u64);
        h.write_f64(reward);
        h.write_u64(witnesses.len() as u64);
        for &w in witnesses {
            h.write_u64(w as u64);
        }
        // Masked to 63 bits so the digest survives a JSON round trip
        // as an exact integer (the wire format carries i64).
        h.finish() & (i64::MAX as u64)
    }

    /// Whether the carried digest matches the content.
    pub fn verify(&self) -> bool {
        self.digest
            == Self::digest_of(self.round, self.gsp, self.success, self.reward, &self.witnesses)
    }

    /// Fold this receipt into a Beta ledger: one reward-weighted
    /// observation about `gsp` per witness. Receipts with no
    /// witnesses (single-member VOs) fold nothing.
    pub fn fold_into(
        &self,
        ledger: &mut gridvo_trust::beta::BetaLedger,
    ) -> gridvo_trust::Result<()> {
        for &w in &self.witnesses {
            ledger.observe(w, self.gsp, self.reward, self.success)?;
        }
        Ok(())
    }
}

/// Outcome of one eviction-based recovery attempt.
enum EvictOutcome {
    /// Greedy repair succeeded.
    Repaired(Assignment, f64),
    /// The reduced IP was re-solved.
    Resolved(Assignment, f64, u64),
    /// Nothing works on the survivors.
    Infeasible(u64),
}

impl Mechanism {
    /// Run formation, then execute the selected VO against `plan`.
    ///
    /// The formation phase is byte-for-byte the plain [`Mechanism::run`]
    /// (same RNG stream); the execution report is `None` when no VO was
    /// selected. An empty plan makes execution a pure pass-through of
    /// the selected VO.
    pub fn run_with_faults<R: Rng + ?Sized>(
        &self,
        scenario: &FormationScenario,
        plan: &FaultPlan,
        rng: &mut R,
    ) -> Result<(FormationOutcome, Option<ExecutionReport>)> {
        let outcome = self.run(scenario, rng)?;
        let report = match &outcome.selected {
            Some(vo) => Some(self.execute(scenario, vo, plan)?),
            None => None,
        };
        Ok((outcome, report))
    }

    /// Execute a selected VO against a fault plan.
    ///
    /// Deterministic: consumes no RNG — the plan *is* the randomness,
    /// drawn up front. With an empty plan the report echoes the VO
    /// bit-identically (no solve, no re-costing).
    pub fn execute(
        &self,
        scenario: &FormationScenario,
        vo: &VoRecord,
        plan: &FaultPlan,
    ) -> Result<ExecutionReport> {
        let started = Instant::now();
        let mut members = vo.members.clone();
        let mut assignment = vo.assignment.clone();
        let mut cost = vo.cost;
        let mut time_factors = vec![1.0f64; scenario.gsp_count()];
        let mut recoveries: Vec<RecoveryRecord> = Vec::new();
        let mut abandoned_in: Option<usize> = None;
        let rounds = plan.horizon();

        'rounds: for round in 0..rounds {
            for ev in plan.events_at(round) {
                // Faults on GSPs outside the VO (never members, or
                // already crashed) hit nobody.
                let Some(local) = members.iter().position(|&m| m == ev.gsp) else {
                    continue;
                };
                let rec_started = Instant::now();
                let cost_before = cost;
                let mut resolve_nodes = 0u64;
                let (kind, orphaned) = match ev.kind {
                    FaultKind::Crash => {
                        let orphaned = assignment.tasks_of(local).len();
                        let kind = match self.evict_and_recover(
                            scenario,
                            &members,
                            &assignment,
                            &time_factors,
                            local,
                            &mut resolve_nodes,
                        ) {
                            Some((survivors, a, c, k)) => {
                                members = survivors;
                                assignment = a;
                                cost = c;
                                k
                            }
                            None => RecoveryKind::Abandon,
                        };
                        (kind, orphaned)
                    }
                    FaultKind::Slowdown { factor } => {
                        if !factor.is_finite() || factor <= 0.0 {
                            continue; // malformed event: no fault occurs
                        }
                        time_factors[ev.gsp] *= factor;
                        let inst = self
                            .scaled_instance(scenario, &members, &time_factors)
                            .ok_or(CoreError::EmptyVo { context: "live VO lost its instance" })?;
                        if assignment.is_feasible(&inst) {
                            (RecoveryKind::Absorbed, 0)
                        } else {
                            // Re-solve over the same members first …
                            let report = self.solve_instance(&inst, None);
                            resolve_nodes += report.nodes;
                            match report.solved {
                                Some((a, c, _)) => {
                                    assignment = a;
                                    cost = c;
                                    (RecoveryKind::Resolve, 0)
                                }
                                None => {
                                    // … else the slowed member must go.
                                    let orphaned = assignment.tasks_of(local).len();
                                    let kind = match self.evict_and_recover(
                                        scenario,
                                        &members,
                                        &assignment,
                                        &time_factors,
                                        local,
                                        &mut resolve_nodes,
                                    ) {
                                        Some((survivors, a, c, _)) => {
                                            members = survivors;
                                            assignment = a;
                                            cost = c;
                                            RecoveryKind::Resolve
                                        }
                                        None => RecoveryKind::Abandon,
                                    };
                                    (kind, orphaned)
                                }
                            }
                        }
                    }
                    FaultKind::SilentDrop { tasks } => {
                        let mine = assignment.tasks_of(local);
                        let dropped = tasks.min(mine.len());
                        if dropped == 0 {
                            continue; // malformed event: nothing dropped
                        }
                        if dropped == mine.len() {
                            // Delivered nothing: same as a crash.
                            let kind = match self.evict_and_recover(
                                scenario,
                                &members,
                                &assignment,
                                &time_factors,
                                local,
                                &mut resolve_nodes,
                            ) {
                                Some((survivors, a, c, k)) => {
                                    members = survivors;
                                    assignment = a;
                                    cost = c;
                                    k
                                }
                                None => RecoveryKind::Abandon,
                            };
                            (kind, dropped)
                        } else {
                            let inst =
                                self.scaled_instance(scenario, &members, &time_factors).ok_or(
                                    CoreError::EmptyVo { context: "live VO lost its instance" },
                                )?;
                            match rehome_dropped(&assignment, local, &mine[..dropped], &inst) {
                                Some(a) => {
                                    cost = a.total_cost(&inst);
                                    assignment = a;
                                    (RecoveryKind::Repair, dropped)
                                }
                                None => {
                                    // Transient fault: a full re-solve
                                    // may re-trust the dropper.
                                    let report = self.solve_instance(&inst, None);
                                    resolve_nodes += report.nodes;
                                    match report.solved {
                                        Some((a, c, _)) => {
                                            assignment = a;
                                            cost = c;
                                            (RecoveryKind::Resolve, dropped)
                                        }
                                        None => (RecoveryKind::Abandon, dropped),
                                    }
                                }
                            }
                        }
                    }
                };
                let reputation = self.config.reputation.compute(scenario.trust(), &members)?;
                recoveries.push(RecoveryRecord {
                    round,
                    gsp: ev.gsp,
                    fault: ev.kind,
                    recovery_kind: kind,
                    orphaned_tasks: orphaned,
                    cost_before,
                    cost_after: cost,
                    cost_delta: cost - cost_before,
                    resolve_nodes,
                    survivors: members.len(),
                    avg_reputation_after: reputation.average,
                    seconds: rec_started.elapsed().as_secs_f64(),
                });
                if kind == RecoveryKind::Abandon {
                    abandoned_in = Some(round);
                    break 'rounds;
                }
            }
        }

        let degraded = recoveries.iter().any(|r| r.recovery_kind != RecoveryKind::Absorbed);
        let status = match abandoned_in {
            Some(round) => ExecutionStatus::Abandoned { round },
            None => ExecutionStatus::Completed { degraded },
        };
        // Fault-free completions echo the VO's own payoff bitwise; the
        // general formula below is algebraically identical but keeping
        // the stored value makes the empty-plan invariant unmissable.
        let final_payoff_share = match status {
            ExecutionStatus::Abandoned { .. } => 0.0,
            ExecutionStatus::Completed { .. } if recoveries.is_empty() => vo.payoff_share,
            ExecutionStatus::Completed { .. } => {
                (scenario.payment() - cost).max(0.0) / members.len() as f64
            }
        };
        let payoff_retention =
            if vo.payoff_share > 0.0 { final_payoff_share / vo.payoff_share } else { 1.0 };
        Ok(ExecutionReport {
            initial_members: vo.members.clone(),
            final_members: members,
            initial_cost: vo.cost,
            final_cost: cost,
            initial_payoff_share: vo.payoff_share,
            final_payoff_share,
            payoff_retention,
            final_assignment: if abandoned_in.is_none() { Some(assignment) } else { None },
            time_factors,
            recoveries,
            status,
            rounds,
            total_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// The instance a (possibly slowed) member set currently faces.
    fn scaled_instance(
        &self,
        scenario: &FormationScenario,
        members: &[usize],
        time_factors: &[f64],
    ) -> Option<AssignmentInstance> {
        let inst = scenario.instance_for(members)?;
        let factors: Vec<f64> = members.iter().map(|&g| time_factors[g]).collect();
        inst.scale_gsp_times(&factors).ok()
    }

    /// Remove the member at `local` and recover: greedy repair first,
    /// full re-solve second. Returns the surviving member set with the
    /// new assignment and cost, or `None` when no recovery exists.
    fn evict_and_recover(
        &self,
        scenario: &FormationScenario,
        members: &[usize],
        assignment: &Assignment,
        time_factors: &[f64],
        local: usize,
        resolve_nodes: &mut u64,
    ) -> Option<(Vec<usize>, Assignment, f64, RecoveryKind)> {
        let survivors: Vec<usize> =
            members.iter().enumerate().filter(|&(i, _)| i != local).map(|(_, &g)| g).collect();
        let inst = self.scaled_instance(scenario, &survivors, time_factors)?;
        match self.recover_on(&inst, assignment, local) {
            EvictOutcome::Repaired(a, c) => Some((survivors, a, c, RecoveryKind::Repair)),
            EvictOutcome::Resolved(a, c, nodes) => {
                *resolve_nodes += nodes;
                Some((survivors, a, c, RecoveryKind::Resolve))
            }
            EvictOutcome::Infeasible(nodes) => {
                *resolve_nodes += nodes;
                None
            }
        }
    }

    /// Repair-first, re-solve-second on an already-reduced instance.
    fn recover_on(
        &self,
        inst: &AssignmentInstance,
        prev: &Assignment,
        evicted_local: usize,
    ) -> EvictOutcome {
        if let Some(a) = repair::repair_after_eviction(prev, evicted_local, inst) {
            let c = a.total_cost(inst);
            return EvictOutcome::Repaired(a, c);
        }
        let report = self.solve_instance(inst, None);
        match report.solved {
            Some((a, c, _)) => EvictOutcome::Resolved(a, c, report.nodes),
            None => EvictOutcome::Infeasible(report.nodes),
        }
    }
}

/// Greedily re-home `dropped` tasks (currently on `dropper`) onto the
/// *other* members — the dropper is not trusted with them again.
/// Largest orphans first, cheapest deadline-feasible host, full
/// feasibility audit at the end (mirrors
/// [`gridvo_solver::repair::repair_after_eviction`]).
fn rehome_dropped(
    prev: &Assignment,
    dropper: usize,
    dropped: &[usize],
    inst: &AssignmentInstance,
) -> Option<Assignment> {
    let k = inst.gsps();
    let d = inst.deadline();
    let mut gsp_of = prev.as_slice().to_vec();
    let mut loads = prev.loads(inst);
    for &t in dropped {
        loads[dropper] -= inst.time(t, dropper);
    }
    let mut orphans = dropped.to_vec();
    let min_time = |t: usize| {
        (0..k).filter(|&g| g != dropper).map(|g| inst.time(t, g)).fold(f64::INFINITY, f64::min)
    };
    orphans.sort_by(|&a, &b| min_time(b).total_cmp(&min_time(a)));
    for t in orphans {
        let mut best: Option<(usize, f64)> = None;
        for g in (0..k).filter(|&g| g != dropper) {
            if loads[g] + inst.time(t, g) > d {
                continue;
            }
            let c = inst.cost(t, g);
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((g, c));
            }
        }
        let (g, _) = best?;
        gsp_of[t] = g;
        loads[g] += inst.time(t, g);
    }
    let a = Assignment::new(gsp_of);
    a.is_feasible(inst).then_some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsp::Gsp;
    use crate::mechanism::FormationConfig;
    use gridvo_trust::TrustGraph;
    use rand::SeedableRng;

    type TestRng = rand::rngs::StdRng;

    /// 4 GSPs, 8 tasks, mutual trust among 0–2; loose constraints so
    /// recoveries have room to work.
    fn scenario(deadline: f64, payment: f64) -> FormationScenario {
        let gsps: Vec<Gsp> = (0..4).map(|i| Gsp::new(i, 100.0 - 10.0 * i as f64)).collect();
        let n = 8;
        let mut cost = Vec::new();
        let mut time = Vec::new();
        for t in 0..n {
            for g in 0..4usize {
                cost.push(1.0 + (t % 3) as f64 + g as f64 * 0.5);
                time.push(1.0 + 0.2 * g as f64);
            }
        }
        let inst = AssignmentInstance::new(n, 4, cost, time, deadline, payment).unwrap();
        let mut trust = TrustGraph::new(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    trust.set_trust(i, j, 1.0);
                }
            }
        }
        FormationScenario::new(gsps, trust, inst).unwrap()
    }

    fn formed_vo(s: &FormationScenario) -> VoRecord {
        let mut rng = TestRng::seed_from_u64(7);
        Mechanism::tvof(FormationConfig::default())
            .run(s, &mut rng)
            .unwrap()
            .selected
            .expect("feasible scenario")
    }

    /// The grand-coalition VO at its brute-force optimum — formation
    /// may select a smaller VO (better payoff share), but the fault
    /// tests want several members so recovery has survivors to use.
    fn full_vo(s: &FormationScenario) -> VoRecord {
        let members: Vec<usize> = (0..s.gsp_count()).collect();
        let inst = s.instance_for(&members).unwrap();
        let (assignment, cost) =
            gridvo_solver::brute::solve(&inst).unwrap().expect("loose constraints");
        let value = (s.payment() - cost).max(0.0);
        VoRecord {
            members: members.clone(),
            assignment,
            cost,
            value,
            payoff_share: value / members.len() as f64,
            avg_reputation: 1.0,
            optimal: true,
            gap: Some(0.0),
        }
    }

    #[test]
    fn empty_plan_is_a_pure_pass_through() {
        let s = scenario(20.0, 200.0);
        let vo = formed_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        let report = mech.execute(&s, &vo, &FaultPlan::empty()).unwrap();
        assert_eq!(report.status, ExecutionStatus::Completed { degraded: false });
        assert_eq!(report.final_members, vo.members);
        assert_eq!(report.final_cost.to_bits(), vo.cost.to_bits());
        assert_eq!(report.final_payoff_share.to_bits(), vo.payoff_share.to_bits());
        assert_eq!(report.final_assignment.as_ref(), Some(&vo.assignment));
        assert!(report.recoveries.is_empty());
        assert_eq!(report.payoff_retention, 1.0);
        assert_eq!(report.rounds, 0);
        assert!(report.time_factors.iter().all(|&f| f == 1.0));
    }

    #[test]
    fn crash_is_recovered_and_telemetry_recorded() {
        let s = scenario(20.0, 200.0);
        let vo = full_vo(&s);
        let crashed = vo.members[0];
        let mech = Mechanism::tvof(FormationConfig::default());
        let plan =
            FaultPlan::new(vec![FaultEvent { round: 0, gsp: crashed, kind: FaultKind::Crash }]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert!(report.completed(), "plenty of slack to recover: {:?}", report.status);
        assert!(!report.final_members.contains(&crashed));
        assert_eq!(report.final_members.len(), vo.members.len() - 1);
        assert_eq!(report.recoveries.len(), 1);
        let r = &report.recoveries[0];
        assert!(matches!(r.recovery_kind, RecoveryKind::Repair | RecoveryKind::Resolve));
        assert!((r.cost_delta - (r.cost_after - r.cost_before)).abs() < 1e-12);
        assert!(r.avg_reputation_after > 0.0);
        assert_eq!(r.survivors, report.final_members.len());
        // the recovered assignment is feasible on the reduced instance
        let inst = s.instance_for(&report.final_members).unwrap();
        report.final_assignment.unwrap().check_feasible(&inst).unwrap();
    }

    #[test]
    fn crashes_of_non_members_are_skipped() {
        let s = scenario(20.0, 200.0);
        let vo = formed_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        let plan = FaultPlan::new(vec![
            FaultEvent { round: 0, gsp: 99, kind: FaultKind::Crash },
            FaultEvent { round: 1, gsp: 99, kind: FaultKind::Crash },
        ]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert!(report.recoveries.is_empty());
        assert_eq!(report.status, ExecutionStatus::Completed { degraded: false });
        assert_eq!(report.final_cost.to_bits(), vo.cost.to_bits());
    }

    #[test]
    fn unrecoverable_crash_abandons() {
        // 2 tasks on 2 GSPs, deadline exactly one task each: losing
        // either member leaves the survivor unable to take both tasks.
        let gsps = vec![Gsp::new(0, 10.0), Gsp::new(1, 10.0)];
        let inst = AssignmentInstance::new(2, 2, vec![1.0; 4], vec![2.0; 4], 2.0, 100.0).unwrap();
        let mut trust = TrustGraph::new(2);
        trust.set_trust(0, 1, 1.0);
        trust.set_trust(1, 0, 1.0);
        let s = FormationScenario::new(gsps, trust, inst).unwrap();
        let vo = formed_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 2,
            gsp: vo.members[0],
            kind: FaultKind::Crash,
        }]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert_eq!(report.status, ExecutionStatus::Abandoned { round: 2 });
        assert!(report.final_assignment.is_none());
        assert_eq!(report.final_payoff_share, 0.0);
        assert_eq!(report.payoff_retention, 0.0);
        assert_eq!(report.recoveries.last().unwrap().recovery_kind, RecoveryKind::Abandon);
    }

    #[test]
    fn small_slowdown_is_absorbed_large_one_is_not() {
        let s = scenario(20.0, 200.0);
        let vo = full_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        let g = vo.members[0];
        // tiny slowdown: deadline slack absorbs it
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 0,
            gsp: g,
            kind: FaultKind::Slowdown { factor: 1.01 },
        }]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert_eq!(report.recoveries[0].recovery_kind, RecoveryKind::Absorbed);
        assert_eq!(report.status, ExecutionStatus::Completed { degraded: false });
        assert_eq!(report.final_cost.to_bits(), vo.cost.to_bits());
        assert!((report.time_factors[g] - 1.01).abs() < 1e-12);
        // massive slowdown: the member cannot hold any task any more
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 0,
            gsp: g,
            kind: FaultKind::Slowdown { factor: 1000.0 },
        }]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert_ne!(report.recoveries[0].recovery_kind, RecoveryKind::Absorbed);
        assert!(report.completed(), "survivors have slack: {:?}", report.status);
    }

    #[test]
    fn silent_drop_rehomes_tasks_off_the_dropper() {
        let s = scenario(20.0, 200.0);
        let vo = full_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        // find a member holding ≥ 2 tasks so the drop is partial
        let holder = (0..vo.members.len())
            .find(|&l| vo.assignment.tasks_of(l).len() >= 2)
            .expect("8 tasks on ≤4 members: someone holds 2");
        let g = vo.members[holder];
        let victim_task = vo.assignment.tasks_of(holder)[0];
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 0,
            gsp: g,
            kind: FaultKind::SilentDrop { tasks: 1 },
        }]);
        let report = mech.execute(&s, &vo, &plan).unwrap();
        assert!(report.completed());
        assert_eq!(report.final_members, vo.members, "partial drop keeps the member");
        let r = &report.recoveries[0];
        assert_eq!(r.orphaned_tasks, 1);
        if r.recovery_kind == RecoveryKind::Repair {
            let a = report.final_assignment.as_ref().unwrap();
            assert_ne!(a.gsp_of(victim_task), holder, "dropped task must leave the dropper");
        }
    }

    #[test]
    fn run_with_faults_returns_both_pieces() {
        let s = scenario(20.0, 200.0);
        let mech = Mechanism::tvof(FormationConfig::default());
        let mut rng = TestRng::seed_from_u64(7);
        let (outcome, report) = mech.run_with_faults(&s, &FaultPlan::empty(), &mut rng).unwrap();
        let vo = outcome.selected.expect("feasible");
        let report = report.expect("VO selected → execution ran");
        assert_eq!(report.initial_members, vo.members);
        assert_eq!(report.final_cost.to_bits(), vo.cost.to_bits());
    }

    #[test]
    fn plan_sorts_by_round_and_reports_horizon() {
        let plan = FaultPlan::new(vec![
            FaultEvent { round: 3, gsp: 0, kind: FaultKind::Crash },
            FaultEvent { round: 1, gsp: 1, kind: FaultKind::Crash },
            FaultEvent { round: 1, gsp: 2, kind: FaultKind::Crash },
        ]);
        assert_eq!(plan.horizon(), 4);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events()[0].round, 1);
        assert_eq!(plan.events_at(1).count(), 2);
        assert!(FaultPlan::empty().is_empty());
        assert_eq!(FaultPlan::empty().horizon(), 0);
    }

    #[test]
    fn plan_and_report_round_trip_as_json() {
        let plan = FaultPlan::new(vec![
            FaultEvent { round: 0, gsp: 2, kind: FaultKind::Crash },
            FaultEvent { round: 1, gsp: 0, kind: FaultKind::Slowdown { factor: 2.5 } },
            FaultEvent { round: 2, gsp: 1, kind: FaultKind::SilentDrop { tasks: 2 } },
        ]);
        let text = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);

        let s = scenario(20.0, 200.0);
        let vo = formed_vo(&s);
        let mech = Mechanism::tvof(FormationConfig::default());
        let report = mech.execute(&s, &vo, &plan).unwrap();
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: ExecutionReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.status, report.status);
        assert_eq!(back.recoveries, report.recoveries);
        assert_eq!(back.final_members, report.final_members);
    }
}
