//! Adapter from a formation scenario to a coalitional game.
//!
//! Eq. (15): `v(C) = P − C(T, C)` when the task-assignment IP is
//! feasible for VO `C`, else 0. Evaluating `v` means solving an IP, so
//! the adapter wraps the solver behind `gridvo-game`'s memoizing
//! characteristic function — every analysis (Shapley, core, least
//! core, merge-and-split) then shares one cache of IP solves.

use crate::scenario::FormationScenario;
use gridvo_game::characteristic::{FnGame, MemoCharacteristic};
use gridvo_game::Coalition;
use gridvo_solver::branch_bound::BranchBound;

/// The VO-formation game of eq. (15) over a scenario's GSPs.
///
/// Coalition bits index GSPs. Values are clamped at 0 (a VO that
/// cannot profitably execute the program simply does not form).
pub type VoGame<'a> = MemoCharacteristic<FnGame<Box<dyn Fn(Coalition) -> f64 + 'a>>>;

/// Build the (memoized) VO game for a scenario, using `solver` for
/// every coalition's IP.
pub fn vo_game(scenario: &FormationScenario, solver: BranchBound) -> VoGame<'_> {
    let payment = scenario.payment();
    let f: Box<dyn Fn(Coalition) -> f64 + '_> = Box::new(move |c: Coalition| {
        if c.is_empty() {
            return 0.0;
        }
        let members = c.to_vec();
        match scenario.instance_for(&members).and_then(|inst| solver.solve(&inst)) {
            Some(o) => (payment - o.cost).max(0.0),
            None => 0.0,
        }
    });
    MemoCharacteristic::new(FnGame::new(scenario.gsp_count(), f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsp::Gsp;
    use gridvo_game::CharacteristicFn;
    use gridvo_solver::AssignmentInstance;
    use gridvo_trust::TrustGraph;

    fn scenario() -> FormationScenario {
        let gsps = vec![Gsp::new(0, 100.0), Gsp::new(1, 100.0), Gsp::new(2, 100.0)];
        let n = 6;
        let mut cost = Vec::new();
        for t in 0..n {
            for g in 0..3usize {
                cost.push(1.0 + ((t + g) % 3) as f64);
            }
        }
        let inst = AssignmentInstance::new(n, 3, cost, vec![1.0; n * 3], 10.0, 50.0).unwrap();
        FormationScenario::new(gsps, TrustGraph::new(3), inst).unwrap()
    }

    #[test]
    fn empty_coalition_is_zero() {
        let s = scenario();
        let game = vo_game(&s, BranchBound::default());
        assert_eq!(game.value(Coalition::EMPTY), 0.0);
    }

    #[test]
    fn values_match_direct_solves() {
        let s = scenario();
        let game = vo_game(&s, BranchBound::default());
        for bits in 1..8u64 {
            let c = Coalition::from_bits(bits);
            let members = c.to_vec();
            let direct = s
                .instance_for(&members)
                .and_then(|i| BranchBound::default().solve(&i))
                .map(|o| (s.payment() - o.cost).max(0.0))
                .unwrap_or(0.0);
            assert!((game.value(c) - direct).abs() < 1e-9, "mismatch at {c}");
        }
    }

    #[test]
    fn memoization_is_active() {
        let s = scenario();
        let game = vo_game(&s, BranchBound::default());
        let c = Coalition::from_members([0, 1]);
        let _ = game.value(c);
        let before = game.cache_size();
        let _ = game.value(c);
        assert_eq!(game.cache_size(), before);
    }
}
