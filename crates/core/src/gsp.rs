//! Grid Service Providers.

use serde::{Deserialize, Serialize};

/// A Grid Service Provider: an autonomous organization whose pooled
/// computational resources are abstracted as one machine of speed
/// `s(G)` GFLOPS (§II-A). GSPs are self-interested and
/// welfare-maximizing: they join a VO only if their payoff share is
/// positive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gsp {
    /// Stable identifier; also the GSP's index in scenario matrices
    /// and trust graphs.
    pub id: usize,
    /// Aggregate speed in GFLOPS (the paper draws these from
    /// `4.91 × [16, 128]`).
    pub speed_gflops: f64,
}

impl Gsp {
    /// Create a GSP.
    pub fn new(id: usize, speed_gflops: f64) -> Self {
        Gsp { id, speed_gflops }
    }

    /// Execution time (s) of a task with `workload` GFLOP on this GSP:
    /// `t(T, G) = w(T) / s(G)`.
    pub fn execution_time(&self, workload_gflop: f64) -> f64 {
        workload_gflop / self.speed_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_formula() {
        let g = Gsp::new(0, 100.0);
        assert!((g.execution_time(250.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let g = Gsp::new(3, 78.56);
        let json = serde_json::to_string(&g).unwrap();
        let back: Gsp = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
