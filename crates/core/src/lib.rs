//! # gridvo-core
//!
//! **TVOF** — the trust-based virtual-organization formation mechanism
//! of Mashayekhy & Grosu (ICPP 2012) — together with the **RVOF**
//! random baseline, pluggable eviction/selection policies, and the
//! stability / Pareto audits of the paper's Theorems 1–2.
//!
//! ## The mechanism (Algorithm 1)
//!
//! Starting from the grand coalition of all GSPs:
//!
//! 1. solve the task-assignment IP for the current VO `C`
//!    (`gridvo-solver`); if feasible, record `C` in the list `L`;
//! 2. compute the members' global reputations on the **trust subgraph
//!    of `C`** with the power method (`gridvo-trust`, Algorithm 2);
//! 3. evict the member with the lowest reputation (ties broken
//!    uniformly at random) and repeat — until the first infeasible VO;
//! 4. select from `L` the VO maximizing the per-member payoff
//!    `(P − C(T,C)) / |C|` and execute the program there.
//!
//! RVOF is identical except step 3 evicts a uniformly random member —
//! the paper's ablation isolating the value of reputation-guided
//! shrinking.
//!
//! ## Quick example
//!
//! ```
//! use gridvo_core::{FormationScenario, Gsp, mechanism::{Mechanism, FormationConfig}};
//! use gridvo_solver::AssignmentInstance;
//! use gridvo_trust::TrustGraph;
//! use rand::SeedableRng;
//!
//! // 2 GSPs, 3 tasks, loose constraints, mutual trust.
//! let gsps = vec![Gsp::new(0, 100.0), Gsp::new(1, 80.0)];
//! let inst = AssignmentInstance::new(
//!     3, 2,
//!     vec![1.0, 2.0, 2.0, 1.0, 1.0, 2.0],
//!     vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0],
//!     10.0, 100.0,
//! ).unwrap();
//! let mut trust = TrustGraph::new(2);
//! trust.set_trust(0, 1, 1.0);
//! trust.set_trust(1, 0, 1.0);
//! let scenario = FormationScenario::new(gsps, trust, inst).unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let outcome = Mechanism::tvof(FormationConfig::default())
//!     .run(&scenario, &mut rng)
//!     .unwrap();
//! let vo = outcome.selected.expect("feasible VO exists");
//! assert!(vo.payoff_share > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod execution;
pub mod game_adapter;
pub mod gsp;
pub mod mechanism;
pub mod merge_split;
pub mod pareto;
pub mod reputation;
pub mod scenario;
pub mod solve_cache;
pub mod stability;
pub mod vo;

pub use execution::{
    ExecutionReceipt, ExecutionReport, ExecutionStatus, FaultEvent, FaultKind, FaultPlan,
    RecoveryKind, RecoveryRecord,
};
pub use gsp::Gsp;
pub use mechanism::{EvictionPolicy, FormationConfig, Mechanism, SelectionRule};
pub use scenario::FormationScenario;
pub use vo::{FormationOutcome, IterationRecord, VoRecord};

/// Errors from the formation mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Scenario pieces disagree on the number of GSPs.
    ShapeMismatch {
        /// What disagreed.
        context: &'static str,
    },
    /// The trust/reputation substrate failed.
    Trust(gridvo_trust::TrustError),
    /// The solver substrate rejected an instance.
    Solver(gridvo_solver::SolverError),
    /// An operation needed at least one member / a live VO but got none.
    EmptyVo {
        /// What was empty.
        context: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            CoreError::Trust(e) => write!(f, "trust error: {e}"),
            CoreError::Solver(e) => write!(f, "solver error: {e}"),
            CoreError::EmptyVo { context } => write!(f, "empty VO: {context}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<gridvo_trust::TrustError> for CoreError {
    fn from(e: gridvo_trust::TrustError) -> Self {
        CoreError::Trust(e)
    }
}

impl From<gridvo_solver::SolverError> for CoreError {
    fn from(e: gridvo_solver::SolverError) -> Self {
        CoreError::Solver(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
