//! Solver-side caching hook for the formation driver.
//!
//! Algorithm 1 solves one task-assignment IP per eviction round. In a
//! request-driven deployment (the `gridvo-service` daemon), many
//! formation requests hit the *same* reduced instances — a repeated
//! request replays the identical solve sequence, and overlapping
//! requests share prefixes of it. The driver therefore accepts a
//! [`SolveCache`]: before each exact solve it asks the cache for the
//! result, and after a miss it stores what the solver produced.
//!
//! ## Keying
//!
//! The key ([`solve_key`]) combines
//! [`AssignmentInstance::canonical_hash`] — a canonical, field-order-
//! independent content hash of the reduced IP — with a hash of the
//! warm incumbent seeded into the solve (if any). Including the warm
//! seed keeps cached replays *bit-identical* to fresh runs: an exact
//! solver always returns an optimal cost regardless of its incumbent,
//! but with multiple cost-ties the *assignment* it lands on (and the
//! `nodes` / `incumbent_source` telemetry) can depend on the seed, so
//! two solves only share a cache slot when their entire input matches.
//!
//! Because the key is derived purely from solver inputs, reputation /
//! trust state is invisible to it: trust-only registry updates
//! invalidate **nothing** solver-side.

use gridvo_solver::instance::Fnv1a;
use gridvo_solver::{Assignment, AssignmentInstance};

/// One memoized IP solve: exactly the data the formation driver
/// consumes from a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolve {
    /// `(assignment, cost, proven_optimal)` when feasible.
    pub solved: Option<(Assignment, f64, bool)>,
    /// Search-tree nodes the original solve expanded.
    pub nodes: u64,
    /// Final-incumbent provenance of the original solve.
    pub incumbent_source: Option<String>,
    /// Relative optimality gap of the original solve (`Some(0.0)` when
    /// proven optimal; positive when a node cap truncated it).
    pub gap: Option<f64>,
    /// Global ids of the candidate VO the solve was for. Not part of
    /// the key — the instance content hash already covers the member
    /// columns — but carried so cache owners can *target* eviction at
    /// entries whose member set includes a given GSP instead of
    /// flushing everything.
    pub members: Vec<usize>,
    /// Registry epoch the solve ran against. Like `members`, not part
    /// of the key: cache owners use it to *age* eviction — a mutation
    /// at epoch `e` only needs to touch entries stored before `e`,
    /// because entries stamped at or after `e` were computed against
    /// state that already includes the mutation. The driver itself is
    /// epoch-ignorant and stamps `0`; epoch-aware owners re-stamp on
    /// store (see `gridvo-service`'s `SharedSolveCache::at_epoch`).
    pub epoch: u64,
}

/// A memo table for exact IP solves, keyed by [`solve_key`].
///
/// Implementations decide storage, capacity and eviction; the driver
/// only promises that anything it `store`s under a key is a valid
/// replay for any later `lookup` of the same key (guaranteed by the
/// key covering the full solver input and the solvers being
/// deterministic).
pub trait SolveCache {
    /// The memoized result for `key`, if present.
    fn lookup(&mut self, key: u64) -> Option<CachedSolve>;
    /// Memoize `value` under `key`.
    fn store(&mut self, key: u64, value: &CachedSolve);
}

/// The no-op cache: every lookup misses, every store is dropped.
/// [`crate::mechanism::Mechanism::run`] uses this — plain library
/// calls pay zero caching overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl SolveCache for NoCache {
    fn lookup(&mut self, _key: u64) -> Option<CachedSolve> {
        None
    }
    fn store(&mut self, _key: u64, _value: &CachedSolve) {}
}

/// Cache key of one exact solve: the instance's canonical content
/// hash combined with the warm incumbent (task → local-GSP vector)
/// seeded into the search, or a distinct tag when the solve is cold.
pub fn solve_key(inst: &AssignmentInstance, warm: Option<&Assignment>) -> u64 {
    solve_key_with_budget(inst, warm, None)
}

/// Budget-aware cache key. A finite node cap changes what a truncated
/// solve returns, so capped solves get their own key space (the cap is
/// appended to the hash); `node_cap = None` — the unlimited default —
/// produces exactly the same key values as [`solve_key`], keeping
/// every pre-existing cache line addressable. Wall-clock deadlines are
/// deliberately *not* part of any key: deadline-truncated results are
/// not reproducible and must never be stored (the driver skips the
/// store when [`crate::mechanism::VoSolveReport`] flags a deadline
/// hit).
pub fn solve_key_with_budget(
    inst: &AssignmentInstance,
    warm: Option<&Assignment>,
    node_cap: Option<u64>,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(inst.canonical_hash());
    match warm {
        Some(a) => {
            h.write(b"warm");
            for &g in a.as_slice() {
                h.write_u64(g as u64);
            }
        }
        None => h.write(b"cold"),
    }
    if let Some(cap) = node_cap {
        h.write(b"cap");
        h.write_u64(cap);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> AssignmentInstance {
        AssignmentInstance::new(
            3,
            2,
            vec![1.0, 4.0, 2.0, 1.0, 3.0, 2.0],
            vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0],
            4.0,
            100.0,
        )
        .unwrap()
    }

    #[test]
    fn warm_and_cold_keys_differ() {
        let i = inst();
        let warm = Assignment::new(vec![0, 1, 0]);
        assert_ne!(solve_key(&i, None), solve_key(&i, Some(&warm)));
        let other = Assignment::new(vec![0, 1, 1]);
        assert_ne!(solve_key(&i, Some(&warm)), solve_key(&i, Some(&other)));
        assert_eq!(solve_key(&i, Some(&warm)), solve_key(&i, Some(&warm.clone())));
    }

    #[test]
    fn no_cache_never_hits() {
        let mut c = NoCache;
        let v = CachedSolve {
            solved: None,
            nodes: 3,
            incumbent_source: None,
            gap: None,
            members: vec![0, 1],
            epoch: 0,
        };
        c.store(7, &v);
        assert_eq!(c.lookup(7), None);
    }

    #[test]
    fn node_cap_gets_its_own_key_space_and_none_preserves_old_keys() {
        let i = inst();
        assert_eq!(solve_key(&i, None), solve_key_with_budget(&i, None, None));
        assert_ne!(solve_key(&i, None), solve_key_with_budget(&i, None, Some(1000)));
        assert_ne!(
            solve_key_with_budget(&i, None, Some(1000)),
            solve_key_with_budget(&i, None, Some(2000))
        );
    }
}
