//! Pareto analysis of the bicriteria (payoff, reputation) objective.
//!
//! A GSP's preference over VOs is bicriteria (eqs. (16)–(17)): more
//! payoff share *and* more average reputation. A VO is **Pareto
//! optimal** within a candidate set when no other VO weakly beats it
//! on both criteria and strictly on one. Theorem 2 claims TVOF's
//! selected VO is Pareto optimal over the feasible list `L`; this
//! module computes the front so the claim can be audited empirically.

use crate::vo::VoRecord;

/// The two criteria of one VO, as a point in objective space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectivePoint {
    /// Per-member payoff share (eq. (16) numerator / |C|).
    pub payoff: f64,
    /// Average global reputation (eq. (17)).
    pub reputation: f64,
}

impl From<&VoRecord> for ObjectivePoint {
    fn from(v: &VoRecord) -> Self {
        ObjectivePoint { payoff: v.payoff_share, reputation: v.avg_reputation }
    }
}

/// `a` dominates `b`: at least as good on both criteria, strictly
/// better on at least one.
pub fn dominates(a: ObjectivePoint, b: ObjectivePoint) -> bool {
    a.payoff >= b.payoff
        && a.reputation >= b.reputation
        && (a.payoff > b.payoff || a.reputation > b.reputation)
}

/// Indices of the Pareto-optimal VOs within `vos`.
pub fn pareto_front(vos: &[VoRecord]) -> Vec<usize> {
    let points: Vec<ObjectivePoint> = vos.iter().map(ObjectivePoint::from).collect();
    (0..vos.len())
        .filter(|&i| !points.iter().enumerate().any(|(j, &p)| j != i && dominates(p, points[i])))
        .collect()
}

/// Whether `vos[index]` is Pareto optimal within `vos` — the audit of
/// Theorem 2 for a selected VO.
pub fn is_pareto_optimal(vos: &[VoRecord], index: usize) -> bool {
    let target = ObjectivePoint::from(&vos[index]);
    !vos.iter().enumerate().any(|(j, v)| j != index && dominates(ObjectivePoint::from(v), target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvo_solver::Assignment;

    fn vo(payoff: f64, rep: f64) -> VoRecord {
        VoRecord {
            members: vec![0],
            assignment: Assignment::new(vec![0]),
            cost: 0.0,
            value: payoff,
            payoff_share: payoff,
            avg_reputation: rep,
            optimal: true,
            gap: Some(0.0),
        }
    }

    #[test]
    fn dominance_definition() {
        let a = ObjectivePoint { payoff: 2.0, reputation: 0.5 };
        let b = ObjectivePoint { payoff: 1.0, reputation: 0.5 };
        let c = ObjectivePoint { payoff: 1.0, reputation: 0.9 };
        assert!(dominates(a, b));
        assert!(!dominates(b, a));
        assert!(!dominates(a, c) && !dominates(c, a)); // incomparable
        assert!(!dominates(a, a)); // no strict improvement
    }

    #[test]
    fn front_excludes_dominated() {
        let vos = vec![vo(5.0, 0.2), vo(3.0, 0.8), vo(2.0, 0.5), vo(4.0, 0.2)];
        let front = pareto_front(&vos);
        assert_eq!(front, vec![0, 1]);
        assert!(is_pareto_optimal(&vos, 0));
        assert!(is_pareto_optimal(&vos, 1));
        assert!(!is_pareto_optimal(&vos, 2));
        assert!(!is_pareto_optimal(&vos, 3));
    }

    #[test]
    fn duplicates_are_both_on_front() {
        let vos = vec![vo(1.0, 1.0), vo(1.0, 1.0)];
        assert_eq!(pareto_front(&vos), vec![0, 1]);
    }

    #[test]
    fn singleton_and_empty() {
        assert!(pareto_front(&[]).is_empty());
        let vos = vec![vo(1.0, 0.1)];
        assert_eq!(pareto_front(&vos), vec![0]);
    }

    #[test]
    fn max_payoff_vo_is_always_on_front() {
        // the mechanism's selection (max payoff) can never be dominated
        let vos = vec![vo(5.0, 0.1), vo(4.9, 0.9), vo(1.0, 0.95)];
        let front = pareto_front(&vos);
        assert!(front.contains(&0));
    }
}
